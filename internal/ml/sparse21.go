package ml

import (
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/linalg"
)

// Sparse21Config controls the ℓ2,1-norm sparse-regression solver for
//
//	min_W ‖XW − Y‖₂,₁ + γ‖Wᵀ‖₂,₁
//
// (rows of W are per-feature weight vectors across targets/classes; the
// regularizer drives entire feature rows to zero jointly).
type Sparse21Config struct {
	// Gamma is the regularization strength γ (default 0.1).
	Gamma float64
	// MaxIter bounds IRLS iterations (default 15).
	MaxIter int
	// Tol stops when the relative change in the objective falls below it
	// (default 1e-4).
	Tol float64
	// Eps smooths the IRLS reweighting to avoid division by zero (default
	// 1e-8).
	Eps float64
	// MaxRows caps the number of rows entering the solve; when the input has
	// more, a uniform row subsample (seeded by Seed) is used. Zero means no
	// cap. This mirrors the paper's use of coresets/sketches to keep the
	// sparse-regression objective tractable.
	MaxRows int
	// Seed seeds the row subsample when MaxRows applies.
	Seed int64
	// RobustLabels enables the modified objective of §6.2 for classification:
	// after each W-step, rows whose current prediction overwhelmingly favors
	// a different class have their one-hot target relaxed toward that class,
	// fitting a consistent labelling under label corruption.
	RobustLabels bool
}

// Sparse21Result is the fitted solution and its derived feature ranking.
type Sparse21Result struct {
	// W is the d×c weight matrix in standardized feature space.
	W *linalg.Matrix
	// RowNorms is ‖w_j‖₂ per feature — the feature ranking score.
	RowNorms []float64
	// Iterations is the number of IRLS steps performed.
	Iterations int
	// Objective is the final value of the loss.
	Objective float64
}

// SolveSparse21 minimizes the joint ℓ2,1 objective with iteratively
// reweighted least squares. Each W-step solves the weighted ridge system in
// the n-dimensional dual via the Woodbury identity, so the per-iteration cost
// is O(n²d + n³) — linear in the number of features, which in ARDA vastly
// exceeds the coreset size.
func SolveSparse21(ds *Dataset, cfg Sparse21Config) (*Sparse21Result, error) {
	if cfg.Gamma <= 0 {
		cfg.Gamma = 0.1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 15
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 1e-8
	}
	work := ds
	if cfg.MaxRows > 0 && ds.N > cfg.MaxRows {
		rng := rand.New(rand.NewSource(cfg.Seed))
		idx := rng.Perm(ds.N)[:cfg.MaxRows]
		work = ds.Subset(idx)
	}
	std := FitStandardization(work)
	sds := std.Apply(work)
	n, d := sds.N, sds.D

	// Build the target matrix: one-hot classes or the centered target.
	var c int
	var y *linalg.Matrix
	if sds.Task == Classification {
		c = sds.Classes
		y = linalg.NewMatrix(n, c)
		for i := 0; i < n; i++ {
			y.Set(i, sds.Label(i), 1)
		}
	} else {
		c = 1
		y = linalg.NewMatrix(n, 1)
		mean := 0.0
		for _, v := range sds.Y {
			mean += v
		}
		mean /= float64(n)
		for i, v := range sds.Y {
			y.Set(i, 0, v-mean)
		}
	}

	x := &linalg.Matrix{Rows: n, Cols: d, Data: sds.X}
	w := linalg.NewMatrix(d, c)
	// IRLS diagonal weights; the first iteration uses unit weights, which
	// corresponds to a plain ridge warm start.
	uInv := make([]float64, n) // 1/u_i = 2·max(‖x_iW − y_i‖, ε)
	vInv := make([]float64, d) // 1/v_j = 2·max(‖w_j‖, ε)
	for i := range uInv {
		uInv[i] = 1
	}
	for j := range vInv {
		vInv[j] = 1
	}

	prevObj := math.Inf(1)
	res := &Sparse21Result{}
	xs := linalg.NewMatrix(n, d) // X·diag(s), s_j = vInv_j/γ
	g := linalg.NewMatrix(n, n)
	pred := linalg.NewMatrix(n, c)
	var spd linalg.SPDSolver // factor/solve buffers reused across iterations
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Xs = X·diag(vInv/γ); G = Xs·Xᵀ + diag(uInv).
		for i := 0; i < n; i++ {
			xrow := x.Row(i)
			srow := xs.Row(i)
			for j := 0; j < d; j++ {
				srow[j] = xrow[j] * vInv[j] / cfg.Gamma
			}
		}
		// The Gram upper triangle is the IRLS bottleneck (O(n²d)); computing
		// four G entries per pass over a row — each with its own sequential
		// accumulator — keeps the results bit-identical to one-at-a-time Dot
		// while overlapping the dependent-add latency. (Eight-wide was tried
		// and measured ~40% slower: the extra slice bases spill registers.)
		for a := 0; a < n; a++ {
			sa := xs.Row(a)
			grow := g.Row(a)
			b := a
			for ; b+4 <= n; b += 4 {
				grow[b], grow[b+1], grow[b+2], grow[b+3] =
					linalg.Dot4(sa, x.Row(b), x.Row(b+1), x.Row(b+2), x.Row(b+3))
			}
			for ; b < n; b++ {
				grow[b] = linalg.Dot(sa, x.Row(b))
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < a; b++ {
				g.Set(a, b, g.At(b, a))
			}
			g.Data[a*n+a] += uInv[a]
		}
		z, err := spd.Solve(g, y)
		if err != nil {
			return nil, err
		}
		// W = diag(vInv/γ)·Xᵀ·Z.
		for j := 0; j < d; j++ {
			for k := 0; k < c; k++ {
				w.Set(j, k, 0)
			}
		}
		for i := 0; i < n; i++ {
			xrow := xs.Row(i)
			zrow := z.Row(i)
			for j := 0; j < d; j++ {
				if xrow[j] == 0 {
					continue
				}
				wrow := w.Row(j)
				for k := 0; k < c; k++ {
					wrow[k] += xrow[j] * zrow[k]
				}
			}
		}
		// Residuals, objective, and reweighting.
		obj := 0.0
		linalg.MulInto(pred, x, w)
		for i := 0; i < n; i++ {
			rnorm := 0.0
			prow := pred.Row(i)
			yrow := y.Row(i)
			for k := 0; k < c; k++ {
				dv := prow[k] - yrow[k]
				rnorm += dv * dv
			}
			rnorm = math.Sqrt(rnorm)
			obj += rnorm
			uInv[i] = 2 * math.Max(rnorm, cfg.Eps)
		}
		for j := 0; j < d; j++ {
			wn := linalg.Norm2(w.Row(j))
			obj += cfg.Gamma * wn
			vInv[j] = 2 * math.Max(wn, cfg.Eps)
		}
		if cfg.RobustLabels && sds.Task == Classification {
			relaxLabels(pred, y, sds)
		}
		res.Iterations = iter + 1
		res.Objective = obj
		if !math.IsInf(prevObj, 0) && math.Abs(prevObj-obj) <= cfg.Tol*math.Max(1, math.Abs(prevObj)) {
			break
		}
		prevObj = obj
	}
	res.W = w
	res.RowNorms = make([]float64, d)
	for j := 0; j < d; j++ {
		res.RowNorms[j] = linalg.Norm2(w.Row(j))
	}
	return res, nil
}

// relaxLabels implements the consistent-labelling variant: when the model's
// score for another class exceeds the observed class's score by a wide
// margin, the one-hot target is softened toward the predicted class, letting
// the solve tolerate corrupted labels.
func relaxLabels(pred, y *linalg.Matrix, ds *Dataset) {
	const margin = 0.5
	for i := 0; i < pred.Rows; i++ {
		obs := ds.Label(i)
		prow := pred.Row(i)
		best, bestK := math.Inf(-1), obs
		for k, v := range prow {
			if v > best {
				best, bestK = v, k
			}
		}
		if bestK != obs && best > prow[obs]+margin {
			yrow := y.Row(i)
			for k := range yrow {
				yrow[k] = 0
			}
			yrow[obs] = 0.5
			yrow[bestK] = 0.5
		}
	}
}
