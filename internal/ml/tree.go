package ml

import (
	"math"
	"math/bits"
	"math/rand"
)

// TreeConfig controls CART decision-tree growth.
type TreeConfig struct {
	// MaxDepth bounds tree depth; <= 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// MTry is the number of features considered per split; <= 0 means all.
	// Random forests set sqrt(d) for classification and d/3 for regression.
	MTry int
}

// The split kernel has two regimes, chosen per subtree by sample count only
// (never by data values or scheduling, so the choice is deterministic):
//
//   - presorted (m > presortCutoff): per-feature orders are computed once —
//     derived linearly from the forest's shared split set, or sorted once
//     per tree — and stably partitioned down the tree, so nodes never sort.
//     Each split pays O(d·m) to repartition every feature's order.
//   - flat (m <= presortCutoff, and subtrees below smallNodeCutoff): nodes
//     gather the node's values into flat scratch and sort with a
//     specialized (float64 key, int32 payload) introsort. Each split pays
//     O(mtry·m·log m) with tiny constants and no d-factor.
//
// The crossover is decided by comparing the two per-split costs: presorted
// partitioning repartitions all d features (O(d·m)), flat sorting sorts
// only the mtry candidates (O(mtry·m·log m)), so flat wins exactly when
// mtry·log₂(m) < d. That boundary separates ARDA's two forest shapes:
// classification selection forests on a coreset (mtry = √d with d ≈
// 100-200 → flat) and regression or evaluation forests (mtry = d/3, or
// thousands of samples → presorted). useFlatKernel evaluates the rule; it
// is monotone in m, so once a subtree crosses into the flat regime it
// stays there.
const smallNodeCutoff = 64

// useFlatKernel reports whether the flat kernel is the cheaper regime for a
// (sub)tree of m samples with the given resolved mtry.
func useFlatKernel(mtry, d, m int) bool {
	if d == 0 || m <= smallNodeCutoff {
		return true
	}
	return mtry*bits.Len(uint(m-1)) < d
}

// treeNode is one node of a fitted CART tree. Leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int32
	value       float64 // prediction: majority class or mean target
}

// Tree is a fitted CART decision tree.
type Tree struct {
	nodes []treeNode
	// importance accumulates the total weighted impurity decrease per
	// feature over the tree's splits.
	importance []float64
}

// Predict returns the tree's prediction for feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Importance returns the per-feature total impurity decrease (unnormalized).
// The returned slice is a copy; mutating it cannot corrupt the fitted tree.
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// treeBuilder grows one tree. Sample identity is a tree-local position
// p ∈ [0, m). Feature values live in per-feature split columns: the tree's
// own gathered columns (length m, rowOf nil) or the forest's shared
// split-set columns addressed through the bootstrap row map (length n,
// rowOf set).
type treeBuilder struct {
	cfg     TreeConfig
	rng     *rand.Rand
	tree    *Tree
	task    Task
	classes int
	m, d    int
	mtry    int
	ws      *treeWorkspace

	scols []SplitColumn // per-feature values (+ global orders when shared)
	rowOf []int32       // tree position → column row; nil means identity
	ssn   int           // shared split-set row count (scan cost rule)
	// canScan marks the shared-column flat path where tree positions are
	// row-major: large nodes then extract their sorted (value, position)
	// sequence from a column's global order instead of sorting.
	canScan bool
}

// FitTree grows a CART tree over the samples indexed by idx (all samples if
// idx is nil; duplicate indices are allowed and count with multiplicity).
// rng is only used when cfg.MTry restricts the feature set.
func FitTree(ds *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	m := ds.N
	if idx != nil {
		m = len(idx)
	}
	ws := treeScratch.Get()
	b := &treeBuilder{
		cfg:     cfg,
		rng:     rng,
		tree:    &Tree{importance: make([]float64, ds.D)},
		task:    ds.Task,
		classes: ds.Classes,
		m:       m,
		d:       ds.D,
		ws:      ws,
	}
	b.mtry = resolveMTry(cfg.MTry, ds.D)
	ws.reserve(m, ds.D, b.classScratch())
	ws.reserveCols(m, ds.D)
	ws.reserveColHeaders(ds.D)
	for j := 0; j < ds.D; j++ {
		ws.scols[j] = SplitColumn{v: ws.colv[j*m : (j+1)*m]}
	}
	b.scols = ws.scols
	rbuf := ws.rbuf
	for p := 0; p < m; p++ {
		i := p
		if idx != nil {
			i = idx[p]
		}
		ws.ys[p] = ds.Y[i]
		if b.task == Classification {
			ws.labels[p] = int32(ds.Label(i))
		}
		ds.RowTo(i, rbuf)
		for j := 0; j < ds.D; j++ {
			ws.colv[j*m+p] = rbuf[j]
		}
	}
	if !useFlatKernel(b.mtry, ds.D, m) {
		ws.reserveOrders(m, ds.D)
		for j := 0; j < ds.D; j++ {
			col := ws.colv[j*m : (j+1)*m]
			ord := ws.orders[j*m : (j+1)*m]
			for p := range ord {
				ord[p] = int32(p)
			}
			sortOrder(col, ord)
		}
		b.grow(0, m, 0)
	} else {
		b.flatRoot()
	}
	treeScratch.Put(ws)
	return b.tree
}

// classScratch is the class-count scratch size (0 for regression).
func (b *treeBuilder) classScratch() int {
	if b.task == Classification {
		return b.classes
	}
	return 0
}

// flatRoot grows the whole tree with the flat kernel (a lone leaf when
// there are no samples, mirroring the original kernel's degenerate output).
func (b *treeBuilder) flatRoot() {
	if b.m == 0 {
		v := math.NaN()
		if b.task == Classification {
			v = 0
		}
		b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1, value: v})
		return
	}
	s := b.ws.samples[:b.m]
	for i := range s {
		s[i] = int32(i)
	}
	b.growFlat(s, 0)
}

// row maps a tree position to its row in the column store.
func (b *treeBuilder) row(p int32) int32 {
	if b.rowOf != nil {
		return b.rowOf[p]
	}
	return p
}

// ---- presorted kernel ----

// grow recursively builds the subtree over positions [start, end) of every
// feature's order array and returns its node index. Small subtrees hand off
// to the flat kernel: their positions are read out of any one feature's
// (already partitioned) order range, after which the per-feature orders for
// that range are simply abandoned.
func (b *treeBuilder) grow(start, end, depth int) int32 {
	if useFlatKernel(b.mtry, b.d, end-start) {
		s := b.ws.samples[start:end]
		copy(s, b.ws.orders[start:end])
		return b.growFlat(s, depth)
	}
	m := end - start
	imp, value := b.nodeStats(start, end)
	id := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1, value: value})
	if imp <= 1e-12 || m < 2*b.cfg.MinLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return id
	}
	// Zero-gain splits are allowed (impurity gain is non-negative for
	// concave criteria, and e.g. XOR's first split has exactly zero gain).
	feat, thr, gain := b.bestSplit(start, end, imp)
	if feat < 0 || gain < 0 {
		return id
	}
	nl := b.partition(feat, thr, start, end)
	if nl == 0 || nl == m {
		// Threshold rounding put every sample on one side (midpoints of
		// adjacent floats can round onto an endpoint); keep the leaf so
		// Predict's `<= threshold` walk always agrees with training.
		return id
	}
	b.tree.importance[feat] += gain * float64(m)
	left := b.grow(start, start+nl, depth+1)
	right := b.grow(start+nl, end, depth+1)
	nd := &b.tree.nodes[id]
	nd.feature = feat
	nd.threshold = thr
	nd.left = left
	nd.right = right
	return id
}

// nodeStats returns the node impurity (Gini for classification, variance
// for regression) and the node prediction, iterating the node's positions
// via feature 0's order range (every feature's range holds the same
// position set; the presorted path requires d > 0).
func (b *treeBuilder) nodeStats(start, end int) (imp, value float64) {
	ws := b.ws
	n := float64(end - start)
	ord := ws.orders[start:end]
	if b.task == Classification {
		cnt := ws.lcnt
		for k := range cnt {
			cnt[k] = 0
		}
		for _, p := range ord {
			cnt[ws.labels[p]]++
		}
		gini := 1.0
		best, bestK := -1.0, 0
		for k, c := range cnt {
			p := c / n
			gini -= p * p
			if c > best {
				best, bestK = c, k
			}
		}
		return gini, float64(bestK)
	}
	sum, sumSq := 0.0, 0.0
	for _, p := range ord {
		y := ws.ys[p]
		sum += y
		sumSq += y * y
	}
	mean := sum / n
	return sumSq/n - mean*mean, mean
}

// bestSplit scans MTry candidate features and returns the best (feature,
// threshold, impurity gain). The feats permutation persists across nodes of
// one tree, exactly like the original kernel's partial Fisher-Yates state.
func (b *treeBuilder) bestSplit(start, end int, parentImp float64) (int, float64, float64) {
	mtry := b.shuffleFeats()
	ws := b.ws
	feats := ws.feats
	m := end - start
	mt := b.m
	vbuf := ws.vbuf[:m]
	bestFeat, bestThr, bestGain := -1, 0.0, math.Inf(-1)
	if b.task == Classification {
		lbuf := ws.lbuf[:m]
		for f := 0; f < mtry; f++ {
			feat := feats[f]
			col := ws.colv[feat*mt : (feat+1)*mt]
			for i, p := range ws.orders[feat*mt+start : feat*mt+end] {
				vbuf[i] = col[p]
				lbuf[i] = ws.labels[p]
			}
			if vbuf[0] == vbuf[m-1] {
				continue // constant feature in this node: no split exists
			}
			thr, gain := scanSplitsClass(vbuf, lbuf, ws.lcnt, ws.rcnt, parentImp, b.cfg.MinLeaf)
			if gain > bestGain {
				bestFeat, bestThr, bestGain = feat, thr, gain
			}
		}
		return bestFeat, bestThr, bestGain
	}
	ybuf := ws.ybuf[:m]
	for f := 0; f < mtry; f++ {
		feat := feats[f]
		col := ws.colv[feat*mt : (feat+1)*mt]
		for i, p := range ws.orders[feat*mt+start : feat*mt+end] {
			vbuf[i] = col[p]
			ybuf[i] = ws.ys[p]
		}
		if vbuf[0] == vbuf[m-1] {
			continue
		}
		thr, gain := scanSplitsReg(vbuf, ybuf, parentImp, b.cfg.MinLeaf)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = feat, thr, gain
		}
	}
	return bestFeat, bestThr, bestGain
}

// resolveMTry applies TreeConfig.MTry's defaulting rule.
func resolveMTry(mtry, d int) int {
	if mtry <= 0 || mtry > d {
		return d
	}
	return mtry
}

// shuffleFeats runs the partial Fisher-Yates draw of candidate features
// into ws.feats, returning mtry.
func (b *treeBuilder) shuffleFeats() int {
	d := b.d
	mtry := b.mtry
	feats := b.ws.feats
	if mtry < d {
		// Partial Fisher-Yates: draw mtry distinct features.
		for j := 0; j < mtry; j++ {
			k := j + b.rng.Intn(d-j)
			feats[j], feats[k] = feats[k], feats[j]
		}
	}
	return mtry
}

// partition splits [start, end) around `feat <= thr`: the split feature's
// order is already value-sorted, so the left size falls out of a binary
// search, and every other feature's range is stably compacted around the
// goes-left mask — keeping both child ranges value-sorted without
// resorting. Returns the left child's size (0 or m means the split is void
// and the caller must keep the leaf).
func (b *treeBuilder) partition(feat int, thr float64, start, end int) int {
	ws := b.ws
	mt := b.m
	col := ws.colv[feat*mt : (feat+1)*mt]
	ord := ws.orders[feat*mt+start : feat*mt+end]
	lo, hi := 0, len(ord)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if col[ord[mid]] <= thr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	nl := lo
	if nl == 0 || nl == len(ord) {
		return nl
	}
	left := ws.left
	for _, p := range ord[:nl] {
		left[p] = true
	}
	spill := ws.spill
	for j := 0; j < b.d; j++ {
		if j == feat {
			continue // already value-sorted: its first nl entries are the left side
		}
		seg := ws.orders[j*mt+start : j*mt+end]
		w, r := 0, 0
		for _, p := range seg {
			if left[p] {
				seg[w] = p
				w++
			} else {
				spill[r] = p
				r++
			}
		}
		copy(seg[w:], spill[:r])
	}
	// Restore the all-false mask invariant for the next split.
	for _, p := range ord[:nl] {
		left[p] = false
	}
	return nl
}

// ---- flat kernel ----

// growFlat recursively builds the subtree over the given tree positions,
// sorting each candidate feature's node values into flat scratch per split.
func (b *treeBuilder) growFlat(samples []int32, depth int) int32 {
	m := len(samples)
	imp, value := b.nodeStatsFlat(samples)
	id := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1, value: value})
	if imp <= 1e-12 || m < 2*b.cfg.MinLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return id
	}
	// Scan extraction beats per-node sorting only while the node is large:
	// the scan pays O(n + m) per feature regardless of node size, the sort
	// pays O(m·log m) on the node alone — but a sort comparison (call,
	// float compare, ~50% mispredicted branch) costs several times a scan
	// step (sequential loads, predictable branches), hence the 2× weight on
	// the sort side. Either kernel yields identical pairs, so the crossover
	// only affects speed; the rule depends only on sample counts, keeping
	// the choice deterministic. Interior nodes register membership as
	// per-row counts (cleared right after the split search, restoring the
	// all-zero invariant); the root's counts are the bootstrap's own.
	scan := b.canScan && 2*m*bits.Len(uint(m-1)) > b.ssn+m
	if scan && m != b.m {
		ncnt, ro := b.ws.ncnt, b.rowOf
		for _, p := range samples {
			ncnt[ro[p]]++
		}
	}
	feat, thr, gain := b.bestSplitFlat(samples, imp, scan)
	if scan && m != b.m {
		ncnt, ro := b.ws.ncnt, b.rowOf
		for _, p := range samples {
			ncnt[ro[p]] = 0
		}
	}
	if feat < 0 || gain < 0 {
		return id
	}
	nl := b.partitionFlat(samples, feat, thr)
	if nl == 0 || nl == m {
		return id
	}
	b.tree.importance[feat] += gain * float64(m)
	left := b.growFlat(samples[:nl], depth+1)
	right := b.growFlat(samples[nl:], depth+1)
	nd := &b.tree.nodes[id]
	nd.feature = feat
	nd.threshold = thr
	nd.left = left
	nd.right = right
	return id
}

// nodeStatsFlat is nodeStats over an explicit position list.
func (b *treeBuilder) nodeStatsFlat(samples []int32) (imp, value float64) {
	ws := b.ws
	n := float64(len(samples))
	if b.task == Classification {
		cnt := ws.lcnt
		for k := range cnt {
			cnt[k] = 0
		}
		for _, p := range samples {
			cnt[ws.labels[p]]++
		}
		gini := 1.0
		best, bestK := -1.0, 0
		for k, c := range cnt {
			p := c / n
			gini -= p * p
			if c > best {
				best, bestK = c, k
			}
		}
		return gini, float64(bestK)
	}
	sum, sumSq := 0.0, 0.0
	for _, p := range samples {
		y := ws.ys[p]
		sum += y
		sumSq += y * y
	}
	mean := sum / n
	return sumSq/n - mean*mean, mean
}

// sortedPairs fills (vbuf, pay) with the node's (value, position) pairs in
// ascending (value, position) order by gathering and sorting. Nodes eligible
// for counting-scan extraction use scanVals instead.
func (b *treeBuilder) sortedPairs(samples []int32, feat int, vbuf []float64, pay []int32) {
	col := b.scols[feat].v
	if b.rowOf != nil {
		for i, p := range samples {
			vbuf[i] = col[b.rowOf[p]]
			pay[i] = p
		}
	} else {
		for i, p := range samples {
			vbuf[i] = col[p]
			pay[i] = p
		}
	}
	sortKV(vbuf, pay)
}

// scanVals fills (vbuf, out) with the node's ascending (value, payload)
// pairs via a counting scan of the feature's global (value, row) order —
// tree positions are row-major (row r's bootstrap copies are consecutive and
// rows appear in index order), so walking rows in global value order and
// emitting each in-node row's copies produces exactly the sequence sortKV
// would: same comparison relation, unique total order, zero comparisons.
// The payload is the per-position label (classification) or target
// (regression) rather than the position itself: bootstrap copies of a row
// share the row's label/target, so one load per row replaces the sort path's
// per-position payload gather, and in-node membership reduces to a per-row
// count — no per-copy mask checks. Returns false when the feature carries no
// global order (caller falls back to the sort).
func scanVals[T int32 | float64](b *treeBuilder, feat, m int, vbuf []float64, out, payload []T) bool {
	sc := b.scols[feat]
	if sc.ord == nil {
		return false
	}
	ws := b.ws
	// The root's in-node counts are the bootstrap multiplicities themselves;
	// interior nodes deposited theirs in ncnt (growFlat's mark/clear pairing).
	counts := ws.cnt
	if m != b.m {
		counts = ws.ncnt
	}
	base := ws.base
	col := sc.v
	k := 0
	for _, r := range sc.ord {
		c := counts[r]
		if c == 0 {
			continue
		}
		v := col[r]
		pv := payload[base[r]]
		for e := int32(0); e < c; e++ {
			vbuf[k] = v
			out[k] = pv
			k++
		}
	}
	return true
}

// bestSplitFlat produces each candidate feature's sorted (value, position)
// pairs — per-node sort or counting-scan extraction — and sweeps the flat
// scan.
func (b *treeBuilder) bestSplitFlat(samples []int32, parentImp float64, scan bool) (int, float64, float64) {
	mtry := b.shuffleFeats()
	ws := b.ws
	feats := ws.feats
	m := len(samples)
	vbuf := ws.vbuf[:m]
	pay := ws.pay[:m]
	bestFeat, bestThr, bestGain := -1, 0.0, math.Inf(-1)
	if b.task == Classification {
		lbuf := ws.lbuf[:m]
		for f := 0; f < mtry; f++ {
			feat := feats[f]
			if !scan || !scanVals(b, feat, m, vbuf, lbuf, ws.labels) {
				b.sortedPairs(samples, feat, vbuf, pay)
				if vbuf[0] == vbuf[m-1] {
					continue
				}
				for i, p := range pay {
					lbuf[i] = ws.labels[p]
				}
			} else if vbuf[0] == vbuf[m-1] {
				continue
			}
			thr, gain := scanSplitsClass(vbuf, lbuf, ws.lcnt, ws.rcnt, parentImp, b.cfg.MinLeaf)
			if gain > bestGain {
				bestFeat, bestThr, bestGain = feat, thr, gain
			}
		}
		return bestFeat, bestThr, bestGain
	}
	ybuf := ws.ybuf[:m]
	for f := 0; f < mtry; f++ {
		feat := feats[f]
		if !scan || !scanVals(b, feat, m, vbuf, ybuf, ws.ys) {
			b.sortedPairs(samples, feat, vbuf, pay)
			if vbuf[0] == vbuf[m-1] {
				continue
			}
			for i, p := range pay {
				ybuf[i] = ws.ys[p]
			}
		} else if vbuf[0] == vbuf[m-1] {
			continue
		}
		thr, gain := scanSplitsReg(vbuf, ybuf, parentImp, b.cfg.MinLeaf)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = feat, thr, gain
		}
	}
	return bestFeat, bestThr, bestGain
}

// partitionFlat partitions samples in place around `feat <= thr` and
// returns the left side's size.
func (b *treeBuilder) partitionFlat(samples []int32, feat int, thr float64) int {
	col := b.scols[feat].v
	ro := b.rowOf
	lo, hi := 0, len(samples)
	for lo < hi {
		r := samples[lo]
		if ro != nil {
			r = ro[r]
		}
		if col[r] <= thr {
			lo++
		} else {
			hi--
			samples[lo], samples[hi] = samples[hi], samples[lo]
		}
	}
	return lo
}

// ---- shared scan loops ----

// scanSplitsClass sweeps a node's value-sorted (values, labels) pair for the
// best Gini split. leftCnt/rightCnt are caller-owned class-count scratch.
// The incremental trick: moving one sample of class c from right to left
// changes Σcnt² by ±(2·cnt[c]∓1), so each position updates in O(1).
func scanSplitsClass(vals []float64, labels []int32, leftCnt, rightCnt []float64, parentImp float64, minLeaf int) (float64, float64) {
	n := len(vals)
	fn := float64(n)
	for k := range leftCnt {
		leftCnt[k] = 0
		rightCnt[k] = 0
	}
	for _, c := range labels {
		rightCnt[c]++
	}
	leftSq, rightSq := 0.0, 0.0
	for _, c := range rightCnt {
		rightSq += c * c
	}
	bestThr, bestGain := 0.0, math.Inf(-1)
	for pos := 1; pos < n; pos++ {
		cls := labels[pos-1]
		leftSq += 2*leftCnt[cls] + 1
		rightSq += -2*rightCnt[cls] + 1
		leftCnt[cls]++
		rightCnt[cls]--
		v0, v1 := vals[pos-1], vals[pos]
		if v0 == v1 || pos < minLeaf || n-pos < minLeaf {
			continue
		}
		nl, nr := float64(pos), float64(n-pos)
		giniL := 1 - leftSq/(nl*nl)
		giniR := 1 - rightSq/(nr*nr)
		gain := parentImp - (nl/fn)*giniL - (nr/fn)*giniR
		if gain > bestGain {
			bestGain = gain
			bestThr = v0 + (v1-v0)/2
		}
	}
	return bestThr, bestGain
}

// scanSplitsReg sweeps a node's value-sorted (values, targets) pair for the
// best variance-reduction split via incremental sums.
func scanSplitsReg(vals, ys []float64, parentImp float64, minLeaf int) (float64, float64) {
	n := len(vals)
	fn := float64(n)
	var sumL, sqL, sumR, sqR float64
	for _, y := range ys {
		sumR += y
		sqR += y * y
	}
	bestThr, bestGain := 0.0, math.Inf(-1)
	for pos := 1; pos < n; pos++ {
		y := ys[pos-1]
		sumL += y
		sqL += y * y
		sumR -= y
		sqR -= y * y
		v0, v1 := vals[pos-1], vals[pos]
		if v0 == v1 || pos < minLeaf || n-pos < minLeaf {
			continue
		}
		nl, nr := float64(pos), float64(n-pos)
		varL := sqL/nl - (sumL/nl)*(sumL/nl)
		varR := sqR/nr - (sumR/nr)*(sumR/nr)
		if varL < 0 {
			varL = 0
		}
		if varR < 0 {
			varR = 0
		}
		gain := parentImp - (nl/fn)*varL - (nr/fn)*varR
		if gain > bestGain {
			bestGain = gain
			bestThr = v0 + (v1-v0)/2
		}
	}
	return bestThr, bestGain
}
