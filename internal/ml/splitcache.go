package ml

import (
	"sync"
)

// SplitColumn is one feature column of a split set: the column's values over
// a fixed row set, plus — when presorted — the row indices sorted by
// (value, row). A SplitColumn is immutable once published: the split kernel
// only reads it, so one column can back any number of concurrently fitted
// forests over the same rows.
type SplitColumn struct {
	v   []float64
	ord []int32 // rows sorted by (value, row); nil when not presorted
}

// NewSplitColumn wraps caller-owned buffers as a split column. When ord is
// non-nil it must have len(values) entries; it is filled in place with the
// (value, row)-sorted permutation — the same unique total order the split
// kernel's own presort produces, so a caller-presorted column is
// indistinguishable from a cache-built one. Pass a nil ord for a values-only
// column (the flat kernel then sorts nodes on demand).
func NewSplitColumn(values []float64, ord []int32) SplitColumn {
	if ord != nil {
		ord = ord[:len(values)]
		for i := range ord {
			ord[i] = int32(i)
		}
		sortOrder(values, ord)
	}
	return SplitColumn{v: values, ord: ord}
}

// Presorted reports whether the column carries a (value, row) order.
func (c SplitColumn) Presorted() bool { return c.ord != nil }

// SplitCacheStats reports a cache's column traffic: misses are column
// requests that had to build (gather values and/or presort), hits are
// requests served entirely from already-built state.
type SplitCacheStats struct {
	Hits, Misses int64
}

// SplitCache is a run-level store of presorted split columns over one
// dataset's rows. Where the per-forest split set dies with its forest, the
// cache outlives every forest fitted during a run: the K RIFS repetitions
// and the threshold sweep's nested forests all draw the immutable real
// columns from here and pay the gather + presort exactly once per run.
//
// Builds are serialized by a mutex and the (value, row) sort is a unique
// total order, so the cached columns are identical no matter which caller
// builds them first or how many workers race to ask. For deterministic
// hit/miss counts, prewarm the cache (one Columns call for every index)
// before fanning work out to the pool.
type SplitCache struct {
	ds      *Dataset
	n       int
	task    Task
	classes int
	ys      []float64
	labels  []int32

	mu     sync.Mutex
	cols   []SplitColumn
	valsOK []bool
	ordsOK []bool
	stats  SplitCacheStats
}

// NewSplitCache prepares an empty cache over ds's rows. Columns build
// lazily; ys and class labels are captured eagerly (they are shared by every
// view). ds must stay alive and unmodified for the cache's lifetime.
func NewSplitCache(ds *Dataset) *SplitCache {
	c := &SplitCache{
		ds:      ds,
		n:       ds.N,
		task:    ds.Task,
		classes: ds.Classes,
		ys:      ds.Y,
		cols:    make([]SplitColumn, ds.D),
		valsOK:  make([]bool, ds.D),
		ordsOK:  make([]bool, ds.D),
	}
	if ds.Task == Classification {
		c.labels = make([]int32, ds.N)
		for i := 0; i < ds.N; i++ {
			c.labels[i] = int32(ds.Label(i))
		}
	}
	return c
}

// Columns returns the cached split columns for the given source-column
// indices, building any that are missing (values always; orders only when
// withOrders). The returned slice is freshly allocated; the columns it holds
// are shared and immutable.
func (c *SplitCache) Columns(idx []int, withOrders bool) []SplitColumn {
	out := make([]SplitColumn, len(idx))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, j := range idx {
		built := false
		if !c.valsOK[j] {
			v := make([]float64, c.n)
			for r := 0; r < c.n; r++ {
				v[r] = c.ds.At(r, j)
			}
			c.cols[j] = SplitColumn{v: v}
			c.valsOK[j] = true
			built = true
		}
		if withOrders && !c.ordsOK[j] {
			col := c.cols[j]
			ord := make([]int32, c.n)
			for r := range ord {
				ord[r] = int32(r)
			}
			sortOrder(col.v, ord)
			col.ord = ord
			c.cols[j] = col
			c.ordsOK[j] = true
			built = true
		}
		if built {
			c.stats.Misses++
		} else {
			c.stats.Hits++
		}
		out[i] = c.cols[j]
	}
	return out
}

// Stats returns the cache's hit/miss counters so far.
func (c *SplitCache) Stats() SplitCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// View assembles a per-forest split view: cols (typically cached real
// columns, in dataset column order) followed by extra per-forest columns
// (e.g. a repetition's freshly injected noise columns). The view borrows the
// cache's row metadata; the dataset it is attached to must therefore share
// this cache's rows and targets.
func (c *SplitCache) View(cols []SplitColumn, extra []SplitColumn) *SplitView {
	all := make([]SplitColumn, 0, len(cols)+len(extra))
	all = append(all, cols...)
	all = append(all, extra...)
	return &SplitView{ss: &splitSet{
		n:       c.n,
		d:       len(all),
		task:    c.task,
		classes: c.classes,
		ys:      c.ys,
		labels:  c.labels,
		cols:    all,
	}}
}

// SplitView is an assembled column set ready to back forest fitting; attach
// it to a Dataset with AttachSplits. Views are cheap (column headers only)
// and immutable.
type SplitView struct {
	ss *splitSet
}

// NumColumns returns the number of columns in the view.
func (v *SplitView) NumColumns() int {
	if v == nil {
		return 0
	}
	return v.ss.d
}

// AttachSplits hands the dataset a prebuilt split view: FitForest (and the
// flattened FitForests scheduler) will fit trees straight from the view's
// columns instead of gathering and presorting the dataset again. The view
// must describe exactly this dataset's columns over exactly its rows — same
// values, same order; the fitted forest is then bit-identical to one grown
// without the view. Attach nil to detach. The attachment is advisory: a
// shape mismatch makes FitForest fall back to its own build.
func (ds *Dataset) AttachSplits(v *SplitView) {
	if v == nil {
		ds.splits = nil
		return
	}
	ds.splits = v.ss
}

// attachedSplits returns the dataset's split set when one is attached and
// structurally consistent with ds (and, when orders are required, fully
// presorted); nil otherwise.
func (ds *Dataset) attachedSplits(needOrders bool) *splitSet {
	ss := ds.splits
	if ss == nil || ss.n != ds.N || ss.d != ds.D || ss.task != ds.Task {
		return nil
	}
	if needOrders {
		for _, col := range ss.cols {
			if col.ord == nil {
				return nil
			}
		}
	}
	return ss
}
