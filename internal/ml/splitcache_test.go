package ml

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

func sameForest(t *testing.T, want, got *Forest) {
	t.Helper()
	if len(want.Trees) != len(got.Trees) {
		t.Fatalf("tree count %d != %d", len(got.Trees), len(want.Trees))
	}
	for i := range want.Trees {
		if !sameTree(want.Trees[i], got.Trees[i]) {
			t.Fatalf("tree %d differs", i)
		}
	}
	wi, gi := want.Importances(), got.Importances()
	for j := range wi {
		if wi[j] != gi[j] {
			t.Fatalf("importance[%d] %v != %v", j, gi[j], wi[j])
		}
	}
}

// TestSplitViewForestEquivalence: a forest fitted from an attached run-level
// split view must be bit-identical to one that builds its own split set —
// in the flat regime (where the view's global orders additionally enable
// counting-scan extraction at large nodes) and in the presorted regime.
func TestSplitViewForestEquivalence(t *testing.T) {
	cases := []struct {
		name string
		task Task
		cfg  ForestConfig
	}{
		// mtry restricted → flat regime; the cached orders light up the
		// counting-scan path that plain FitForest never builds.
		{"flat_scan_classification", Classification, ForestConfig{NTrees: 8, MaxDepth: 10, MTry: 3, Seed: 4}},
		{"flat_scan_regression", Regression, ForestConfig{NTrees: 8, MaxDepth: 10, MTry: 2, Seed: 4}},
		// defaults → presorted regime for regression at d=24.
		{"presorted_regression", Regression, ForestConfig{NTrees: 6, MaxDepth: 8, Seed: 11}},
		{"presorted_classification", Classification, ForestConfig{NTrees: 6, MaxDepth: 8, MTry: 20, Seed: 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := kernelFixture(220, 24, tc.task, 17)
			want := FitForest(ds, tc.cfg)

			cache := NewSplitCache(ds)
			idx := make([]int, ds.D)
			for j := range idx {
				idx[j] = j
			}
			cols := cache.Columns(idx, true)
			ds.AttachSplits(cache.View(cols, nil))
			got := FitForest(ds, tc.cfg)
			ds.AttachSplits(nil)

			sameForest(t, want, got)
		})
	}
}

// TestSplitViewWithExtraColumns mirrors the RIFS repetition shape: a dense
// augmented design whose first d columns are cached real columns and whose
// last t columns are caller-presorted per-repetition noise. The view-backed
// forest must equal the plain one bit-for-bit.
func TestSplitViewWithExtraColumns(t *testing.T) {
	base := kernelFixture(180, 12, Classification, 23)
	n, d, extra := base.N, base.D, 5
	d2 := d + extra
	x := make([]float64, n*d2)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < n; i++ {
		copy(x[i*d2:], base.Row(i))
		for c := 0; c < extra; c++ {
			x[i*d2+d+c] = rng.NormFloat64()
		}
	}
	aug := &Dataset{X: x, N: n, D: d2, Y: base.Y, Task: base.Task, Classes: base.Classes}
	cfg := ForestConfig{NTrees: 10, MaxDepth: 10, Seed: 2}
	want := FitForest(aug, cfg)

	cache := NewSplitCache(base)
	idx := make([]int, d)
	for j := range idx {
		idx[j] = j
	}
	real := cache.Columns(idx, true)
	noise := make([]SplitColumn, extra)
	for c := 0; c < extra; c++ {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = x[i*d2+d+c]
		}
		noise[c] = NewSplitColumn(vals, make([]int32, n))
	}
	aug.AttachSplits(cache.View(real, noise))
	got := FitForest(aug, cfg)
	aug.AttachSplits(nil)

	sameForest(t, want, got)
	if s := cache.Stats(); s.Misses != int64(d) || s.Hits != 0 {
		t.Fatalf("stats = %+v, want %d misses, 0 hits", s, d)
	}
}

// TestSplitViewShapeMismatchFallsBack: a stale or mismatched attachment must
// be ignored, not trusted.
func TestSplitViewShapeMismatchFallsBack(t *testing.T) {
	ds := kernelFixture(120, 8, Classification, 5)
	other := kernelFixture(120, 6, Classification, 5) // fewer columns
	cache := NewSplitCache(other)
	idx := []int{0, 1, 2, 3, 4, 5}
	ds.AttachSplits(cache.View(cache.Columns(idx, true), nil))
	want := FitForest(ds, ForestConfig{NTrees: 4, Seed: 1})
	ds.AttachSplits(nil)
	plain := FitForest(ds, ForestConfig{NTrees: 4, Seed: 1})
	sameForest(t, plain, want)
}

// TestFitForestsMatchesSequential: the flattened (forest, tree) scheduler
// must reproduce forest-at-a-time fitting bit-for-bit at any worker count,
// across mixed tasks, sizes, and seeds sharing one wave.
func TestFitForestsMatchesSequential(t *testing.T) {
	dsC := kernelFixture(150, 10, Classification, 3)
	dsR := kernelFixture(90, 6, Regression, 9)
	jobs := []ForestJob{
		{DS: dsC, Cfg: ForestConfig{NTrees: 7, MaxDepth: 8, Seed: 100}},
		{DS: dsC, Cfg: ForestConfig{NTrees: 3, MaxDepth: 4, MTry: 2, Seed: 7}},
		{DS: dsR, Cfg: ForestConfig{NTrees: 5, MaxDepth: 6, Seed: 42}},
		{DS: dsR, Cfg: ForestConfig{NTrees: 1, Seed: 0}},
	}
	want := make([]*Forest, len(jobs))
	for i, j := range jobs {
		want[i] = FitForest(j.DS, j.Cfg)
	}
	for _, workers := range []int{1, 8} {
		got := FitForests(workers, jobs)
		for i := range jobs {
			sameForest(t, want[i], got[i])
		}
	}
}

// TestFitForestsSharedView: jobs sharing one attached cache view (the sweep
// shape) still match sequential fitting.
func TestFitForestsSharedView(t *testing.T) {
	ds := kernelFixture(160, 14, Classification, 13)
	cache := NewSplitCache(ds)
	idx := make([]int, ds.D)
	for j := range idx {
		idx[j] = j
	}
	ds.AttachSplits(cache.View(cache.Columns(idx, true), nil))
	defer ds.AttachSplits(nil)
	jobs := []ForestJob{
		{DS: ds, Cfg: ForestConfig{NTrees: 6, MaxDepth: 8, Seed: 5}},
		{DS: ds, Cfg: ForestConfig{NTrees: 6, MaxDepth: 8, Seed: 5}},
	}
	want := FitForest(ds, jobs[0].Cfg)
	got := FitForests(0, jobs)
	sameForest(t, want, got[0])
	sameForest(t, want, got[1])
}

// TestNewSplitColumnMatchesCacheOrder: a caller-presorted column must carry
// exactly the order the cache itself would build.
func TestNewSplitColumnMatchesCacheOrder(t *testing.T) {
	ds := kernelFixture(200, 3, Regression, 77)
	cache := NewSplitCache(ds)
	want := cache.Columns([]int{1}, true)[0]
	vals := make([]float64, ds.N)
	for i := 0; i < ds.N; i++ {
		vals[i] = ds.At(i, 1)
	}
	got := NewSplitColumn(vals, make([]int32, ds.N))
	if !got.Presorted() {
		t.Fatal("NewSplitColumn with ord buffer must presort")
	}
	for i := range want.ord {
		if want.ord[i] != got.ord[i] {
			t.Fatalf("ord[%d] = %d, want %d", i, got.ord[i], want.ord[i])
		}
	}
}

// TestSplitCacheWarmAllocs is the run-level alloc gate: once the real
// columns are built, a warm repetition's Columns call allocates only the
// returned header slice — no value or order buffers.
func TestSplitCacheWarmAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	ds := kernelFixture(256, 20, Classification, 8)
	cache := NewSplitCache(ds)
	idx := make([]int, ds.D)
	for j := range idx {
		idx[j] = j
	}
	cache.Columns(idx, true) // cold build
	warm := testing.AllocsPerRun(20, func() {
		cache.Columns(idx, true)
	})
	if warm > 1 {
		t.Fatalf("warm Columns allocates %.0f objects per call, want <= 1 (header slice only)", warm)
	}
	s := cache.Stats()
	if s.Misses != int64(ds.D) {
		t.Fatalf("misses = %d after warm calls, want %d (cold build only)", s.Misses, ds.D)
	}
	if s.Hits == 0 {
		t.Fatal("warm calls recorded no hits")
	}
}
