package ml

import (
	"math"
	"math/rand"
	"time"

	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// NTrees is the ensemble size (default 100).
	NTrees int
	// MaxDepth bounds per-tree depth; <= 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1 for classification,
	// 2 for regression).
	MinLeaf int
	// MTry is the features-per-split count; <= 0 selects sqrt(d) for
	// classification and max(1, d/3) for regression.
	MTry int
	// Seed seeds the per-tree RNGs.
	Seed int64
	// Parallel enables concurrent tree growth on the shared worker pool
	// (bounded by parallel.MaxWorkers). Per-tree RNGs derive from Seed and
	// the tree index, so the fitted forest is identical either way.
	Parallel bool
	// TreeDur, when non-nil, observes every fitted tree's wall-clock growth
	// time (bootstrap draw included) in nanoseconds — the per-tree latency
	// distribution behind the select stage's telemetry. Observability only:
	// it never affects the fitted forest, and nil (the default) costs one
	// branch per tree.
	TreeDur *obs.Histogram
	// legacyKernel grows trees with the original per-node sorting kernel
	// instead of the shared presorted scaffold. Package-internal: only the
	// kernel-equivalence tests and the `make bench-select` pairing set it.
	legacyKernel bool
}

// treeTimer times one tree fit into a histogram; the zero timer (nil
// histogram, telemetry off) never reads the clock.
type treeTimer struct {
	h     *obs.Histogram
	start time.Time
}

func startTreeTimer(h *obs.Histogram) treeTimer {
	if h == nil {
		return treeTimer{}
	}
	return treeTimer{h: h, start: time.Now()}
}

func (t treeTimer) finish() {
	if t.h != nil {
		t.h.Observe(int64(time.Since(t.start)))
	}
}

// Forest is a fitted random forest.
type Forest struct {
	Trees   []*Tree
	task    Task
	classes int
	imp     []float64
}

// resolveForestConfig applies FitForest's defaulting rules, returning the
// normalized config and the per-tree config it implies. Shared by FitForest
// and the cross-forest FitForests scheduler so a forest fits identically
// through either entry point.
func resolveForestConfig(ds *Dataset, cfg ForestConfig) (ForestConfig, TreeConfig) {
	if cfg.NTrees <= 0 {
		cfg.NTrees = 100
	}
	if cfg.MinLeaf <= 0 {
		if ds.Task == Regression {
			cfg.MinLeaf = 2
		} else {
			cfg.MinLeaf = 1
		}
	}
	mtry := cfg.MTry
	if mtry <= 0 {
		if ds.Task == Classification {
			mtry = int(math.Sqrt(float64(ds.D)))
		} else {
			mtry = ds.D / 3
		}
		if mtry < 1 {
			mtry = 1
		}
	}
	return cfg, TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, MTry: mtry}
}

// splitSetFor returns the split set backing a forest fit on ds: the attached
// run-level view when one matches (presort already paid), a fresh per-forest
// build otherwise. All bootstrap trees have m == ds.N samples, so they all
// land in the same kernel regime; global orders are only required when the
// presorted regime will consume them.
func splitSetFor(ds *Dataset, tc TreeConfig, workers int) *splitSet {
	needOrders := !useFlatKernel(resolveMTry(tc.MTry, ds.D), ds.D, ds.N)
	if ss := ds.attachedSplits(needOrders); ss != nil {
		return ss
	}
	return buildSplitSet(ds, workers, needOrders)
}

// bootstrapTree draws one bootstrap sample and grows one tree from the
// shared split set. The RNG stream is identical to the legacy path: n Intn
// draws for the bootstrap, then MTry shuffles inside tree growth.
func bootstrapTree(ss *splitSet, tc TreeConfig, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	ws := treeScratch.Get()
	n := ss.n
	ws.cnt = growInt32(ws.cnt, n)
	cnt := ws.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		cnt[rng.Intn(n)]++
	}
	t := fitTreeFromSplitSet(ss, tc, rng, ws)
	treeScratch.Put(ws)
	return t
}

// aggregateImportances fills f.imp with the normalized mean of per-tree
// normalized importances.
func aggregateImportances(f *Forest, d int) {
	f.imp = make([]float64, d)
	for _, tree := range f.Trees {
		ti := tree.importance
		total := 0.0
		for _, v := range ti {
			total += v
		}
		if total <= 0 {
			continue
		}
		for j, v := range ti {
			f.imp[j] += v / total
		}
	}
	total := 0.0
	for _, v := range f.imp {
		total += v
	}
	if total > 0 {
		for j := range f.imp {
			f.imp[j] /= total
		}
	}
}

// FitForest trains a random forest on ds with bootstrap resampling. The
// dataset is presorted once into a shared split scaffold — or read from an
// attached run-level split view (AttachSplits) when one matches — and each
// tree derives its bootstrap sample's feature orders from it with a linear
// scan, so tree growth never sorts (see splitset.go).
func FitForest(ds *Dataset, cfg ForestConfig) *Forest {
	cfg, tc := resolveForestConfig(ds, cfg)
	f := &Forest{
		Trees:   make([]*Tree, cfg.NTrees),
		task:    ds.Task,
		classes: ds.Classes,
	}
	// Tree growth runs on the shared worker pool: when a forest fits inside
	// an already-parallel stage (e.g. a RIFS repetition), the pool's global
	// cap keeps the total worker count bounded instead of multiplying.
	workers := 1
	if cfg.Parallel {
		workers = 0 // process-wide maximum
	}
	if cfg.legacyKernel {
		parallel.ForEach(workers, cfg.NTrees, func(t int) {
			tm := startTreeTimer(cfg.TreeDur)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
			idx := make([]int, ds.N)
			for i := range idx {
				idx[i] = rng.Intn(ds.N)
			}
			f.Trees[t] = fitTreeLegacy(ds, idx, tc, rng)
			tm.finish()
		})
	} else {
		ss := splitSetFor(ds, tc, workers)
		parallel.ForEach(workers, cfg.NTrees, func(t int) {
			tm := startTreeTimer(cfg.TreeDur)
			f.Trees[t] = bootstrapTree(ss, tc, cfg.Seed+int64(t)*7919)
			tm.finish()
		})
	}
	aggregateImportances(f, ds.D)
	return f
}

// Predict returns the ensemble prediction: majority vote for classification,
// mean for regression.
func (f *Forest) Predict(x []float64) float64 {
	if f.task == Classification {
		votes := make([]int, f.classes)
		for _, t := range f.Trees {
			votes[int(t.Predict(x))]++
		}
		best, bestK := -1, 0
		for k, v := range votes {
			if v > best {
				best, bestK = v, k
			}
		}
		return float64(bestK)
	}
	s := 0.0
	for _, t := range f.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.Trees))
}

// Importances returns the normalized mean-decrease-impurity importance of
// each feature (sums to 1 when any splits occurred). The returned slice is a
// copy; mutating it cannot corrupt the fitted forest.
func (f *Forest) Importances() []float64 {
	out := make([]float64, len(f.imp))
	copy(out, f.imp)
	return out
}
