package ml

import (
	"math"
	"testing"
)

func TestRidgeRecoversCoefficients(t *testing.T) {
	ds := makeRegression(400, 2, 10)
	m, err := FitRidge(ds, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Training MSE should be tiny (noise σ = 0.1).
	var mse float64
	for i := 0; i < ds.N; i++ {
		d := m.Predict(ds.Row(i)) - ds.Y[i]
		mse += d * d
	}
	mse /= float64(ds.N)
	if mse > 0.05 {
		t.Fatalf("ridge training MSE = %v", mse)
	}
}

func TestLassoSparsity(t *testing.T) {
	ds := makeRegression(300, 8, 11)
	m := FitLasso(ds, LassoConfig{Lambda: 0.2})
	w := m.Coefficients()
	// Signal features (0, 1) stay large; noise features shrink to ~0.
	if math.Abs(w[0]) < 0.5 || math.Abs(w[1]) < 0.5 {
		t.Fatalf("lasso killed signal: %v", w[:2])
	}
	for j := 2; j < ds.D; j++ {
		if math.Abs(w[j]) > 0.2 {
			t.Fatalf("lasso noise coef w[%d] = %v", j, w[j])
		}
	}
}

func TestLassoHeavyPenaltyZeroesEverything(t *testing.T) {
	ds := makeRegression(100, 2, 12)
	m := FitLasso(ds, LassoConfig{Lambda: 1e6})
	for j, w := range m.Coefficients() {
		if w != 0 {
			t.Fatalf("w[%d] = %v under huge lambda", j, w)
		}
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ z, t, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.z, c.t); got != c.want {
			t.Fatalf("softThreshold(%v, %v) = %v, want %v", c.z, c.t, got, c.want)
		}
	}
}

func TestLogisticBinary(t *testing.T) {
	ds := makeClassification(400, 2, 3, 13)
	m := FitLogistic(ds, LogisticConfig{})
	if acc := accuracyOf(m, ds); acc < 0.9 {
		t.Fatalf("logistic accuracy = %v", acc)
	}
	fw := m.FeatureWeights()
	if fw[0] < fw[3] || fw[1] < fw[4] {
		t.Fatalf("signal weights not above noise: %v", fw)
	}
}

func TestLogisticMulticlass(t *testing.T) {
	// Three well-separated clusters on a line.
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		k := i % 3
		y[i] = float64(k)
		x[i] = float64(k)*4 + 0.5*float64(i%7)/7
	}
	ds, _ := NewDataset(x, n, 1, y, Classification, 3)
	m := FitLogistic(ds, LogisticConfig{MaxIter: 500})
	if acc := accuracyOf(m, ds); acc < 0.95 {
		t.Fatalf("multiclass logistic accuracy = %v", acc)
	}
}

func TestLinearSVM(t *testing.T) {
	ds := makeClassification(400, 2, 3, 14)
	m := FitLinearSVM(ds, SVMConfig{Seed: 3})
	if acc := accuracyOf(m, ds); acc < 0.9 {
		t.Fatalf("linear svm accuracy = %v", acc)
	}
	fw := m.FeatureWeights()
	if fw[0] < fw[2] {
		t.Fatalf("svm signal weight below noise: %v", fw)
	}
}

func TestRBFSVMNonlinear(t *testing.T) {
	// Concentric rings: inner class 0, outer class 1 — not linearly
	// separable, RBF should handle it.
	n := 300
	x := make([]float64, n*2)
	y := make([]float64, n)
	rng := newTestRNG(15)
	for i := 0; i < n; i++ {
		r := 1.0
		if i%2 == 1 {
			r = 3.0
			y[i] = 1
		}
		theta := rng.Float64() * 2 * math.Pi
		x[i*2] = r*math.Cos(theta) + 0.1*rng.NormFloat64()
		x[i*2+1] = r*math.Sin(theta) + 0.1*rng.NormFloat64()
	}
	ds, _ := NewDataset(x, n, 2, y, Classification, 2)
	m := FitRBFSVM(ds, RBFSVMConfig{Seed: 5, Gamma: 1})
	if acc := accuracyOf(m, ds); acc < 0.9 {
		t.Fatalf("rbf svm ring accuracy = %v", acc)
	}
	// A linear SVM must do much worse on rings.
	lin := FitLinearSVM(ds, SVMConfig{Seed: 5})
	if acc := accuracyOf(lin, ds); acc > 0.75 {
		t.Fatalf("linear svm unexpectedly solves rings: %v", acc)
	}
}

func TestKNNClassification(t *testing.T) {
	ds := makeClassification(200, 2, 1, 16)
	m := FitKNN(ds, 5)
	if acc := accuracyOf(m, ds); acc < 0.9 {
		t.Fatalf("knn accuracy = %v", acc)
	}
}

func TestKNNRegression(t *testing.T) {
	ds := makeRegression(200, 0, 17)
	m := FitKNN(ds, 3)
	var mse, variance, mean float64
	for _, v := range ds.Y {
		mean += v
	}
	mean /= float64(ds.N)
	for i := 0; i < ds.N; i++ {
		d := m.Predict(ds.Row(i)) - ds.Y[i]
		mse += d * d
		variance += (ds.Y[i] - mean) * (ds.Y[i] - mean)
	}
	if mse >= variance {
		t.Fatalf("knn regression no better than mean: mse=%v var=%v", mse, variance)
	}
}

func TestKNNCapsK(t *testing.T) {
	ds := makeClassification(4, 1, 0, 18)
	m := FitKNN(ds, 100)
	if m.k != 4 {
		t.Fatalf("k = %d, want capped at 4", m.k)
	}
}
