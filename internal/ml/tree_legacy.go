package ml

import (
	"math"
	"math/rand"
	"sort"
)

// This file preserves the original per-node sorting CART kernel. The live
// kernel (tree.go) presorts each feature once per tree and partitions the
// orders down the tree; this one re-sorts the node's samples per candidate
// feature through sort.Slice. It stays in the tree as the reference
// implementation the presorted kernel is validated against (classification
// trees must match bit-for-bit; see splitkernel_test.go) and as the "sorted"
// side of the bench pairing behind `make bench-select`.

// legacyTreeBuilder holds mutable state for growing one tree with the
// sort-per-node kernel.
type legacyTreeBuilder struct {
	ds     *Dataset
	cfg    TreeConfig
	rng    *rand.Rand
	tree   *Tree
	counts []float64 // class-count scratch (classification)
	order  []int     // scratch for per-node feature sort
	feats  []int     // feature indices for MTry shuffles
}

// fitTreeLegacy grows a CART tree over the samples indexed by idx (all
// samples if idx is nil) using the original sort-per-node kernel.
func fitTreeLegacy(ds *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if idx == nil {
		idx = make([]int, ds.N)
		for i := range idx {
			idx[i] = i
		}
	}
	b := &legacyTreeBuilder{
		ds:   ds,
		cfg:  cfg,
		rng:  rng,
		tree: &Tree{importance: make([]float64, ds.D)},
	}
	if ds.Task == Classification {
		b.counts = make([]float64, ds.Classes)
	}
	b.feats = make([]int, ds.D)
	for j := range b.feats {
		b.feats[j] = j
	}
	work := make([]int, len(idx))
	copy(work, idx)
	b.grow(work, 0)
	return b.tree
}

// grow recursively builds the subtree over samples and returns its node index.
func (b *legacyTreeBuilder) grow(samples []int, depth int) int32 {
	node := treeNode{feature: -1}
	imp, value := b.nodeStats(samples)
	node.value = value
	id := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node)

	if imp <= 1e-12 || len(samples) < 2*b.cfg.MinLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return id
	}
	// Zero-gain splits are allowed (impurity gain is non-negative for
	// concave criteria, and e.g. XOR's first split has exactly zero gain).
	feat, thr, gain := b.bestSplit(samples, imp)
	if feat < 0 || gain < 0 {
		return id
	}
	// Partition samples in place around the threshold.
	lo, hi := 0, len(samples)
	for lo < hi {
		if b.ds.At(samples[lo], feat) <= thr {
			lo++
		} else {
			hi--
			samples[lo], samples[hi] = samples[hi], samples[lo]
		}
	}
	if lo == 0 || lo == len(samples) {
		return id
	}
	b.tree.importance[feat] += gain * float64(len(samples))
	left := b.grow(samples[:lo], depth+1)
	right := b.grow(samples[lo:], depth+1)
	b.tree.nodes[id].feature = feat
	b.tree.nodes[id].threshold = thr
	b.tree.nodes[id].left = left
	b.tree.nodes[id].right = right
	return id
}

// nodeStats returns the node impurity (Gini for classification, variance for
// regression) and the node prediction.
func (b *legacyTreeBuilder) nodeStats(samples []int) (imp, value float64) {
	n := float64(len(samples))
	if b.ds.Task == Classification {
		for k := range b.counts {
			b.counts[k] = 0
		}
		for _, i := range samples {
			b.counts[b.ds.Label(i)]++
		}
		gini := 1.0
		best, bestK := -1.0, 0
		for k, c := range b.counts {
			p := c / n
			gini -= p * p
			if c > best {
				best, bestK = c, k
			}
		}
		return gini, float64(bestK)
	}
	sum, sumSq := 0.0, 0.0
	for _, i := range samples {
		y := b.ds.Y[i]
		sum += y
		sumSq += y * y
	}
	mean := sum / n
	return sumSq/n - mean*mean, mean
}

// bestSplit scans MTry candidate features and returns the best (feature,
// threshold, impurity gain).
func (b *legacyTreeBuilder) bestSplit(samples []int, parentImp float64) (int, float64, float64) {
	mtry := b.cfg.MTry
	if mtry <= 0 || mtry > b.ds.D {
		mtry = b.ds.D
	}
	if mtry < b.ds.D {
		// Partial Fisher-Yates: draw mtry distinct features.
		for j := 0; j < mtry; j++ {
			k := j + b.rng.Intn(b.ds.D-j)
			b.feats[j], b.feats[k] = b.feats[k], b.feats[j]
		}
	}
	if cap(b.order) < len(samples) {
		b.order = make([]int, len(samples))
	}
	order := b.order[:len(samples)]

	bestFeat, bestThr, bestGain := -1, 0.0, math.Inf(-1)
	for f := 0; f < mtry; f++ {
		feat := b.feats[f]
		copy(order, samples)
		sort.Slice(order, func(a, c int) bool {
			return b.ds.At(order[a], feat) < b.ds.At(order[c], feat)
		})
		thr, gain := b.scanSplits(order, feat, parentImp)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = feat, thr, gain
		}
	}
	return bestFeat, bestThr, bestGain
}

// scanSplits sweeps sorted samples for feature feat and returns the best
// threshold and gain.
func (b *legacyTreeBuilder) scanSplits(order []int, feat int, parentImp float64) (float64, float64) {
	n := len(order)
	fn := float64(n)
	minLeaf := b.cfg.MinLeaf
	bestThr, bestGain := 0.0, math.Inf(-1)

	if b.ds.Task == Classification {
		k := b.ds.Classes
		leftCnt := make([]float64, k)
		rightCnt := make([]float64, k)
		for _, i := range order {
			rightCnt[b.ds.Label(i)]++
		}
		leftSq, rightSq := 0.0, 0.0
		for _, c := range rightCnt {
			rightSq += c * c
		}
		for pos := 1; pos < n; pos++ {
			c := float64(b.ds.Label(order[pos-1]))
			cls := int(c)
			leftSq += 2*leftCnt[cls] + 1
			rightSq += -2*rightCnt[cls] + 1
			leftCnt[cls]++
			rightCnt[cls]--
			v0 := b.ds.At(order[pos-1], feat)
			v1 := b.ds.At(order[pos], feat)
			if v0 == v1 || pos < minLeaf || n-pos < minLeaf {
				continue
			}
			nl, nr := float64(pos), float64(n-pos)
			giniL := 1 - leftSq/(nl*nl)
			giniR := 1 - rightSq/(nr*nr)
			gain := parentImp - (nl/fn)*giniL - (nr/fn)*giniR
			if gain > bestGain {
				bestGain = gain
				bestThr = v0 + (v1-v0)/2
			}
		}
		return bestThr, bestGain
	}

	// Regression: incremental variance via sums.
	var sumL, sqL, sumR, sqR float64
	for _, i := range order {
		y := b.ds.Y[i]
		sumR += y
		sqR += y * y
	}
	for pos := 1; pos < n; pos++ {
		y := b.ds.Y[order[pos-1]]
		sumL += y
		sqL += y * y
		sumR -= y
		sqR -= y * y
		v0 := b.ds.At(order[pos-1], feat)
		v1 := b.ds.At(order[pos], feat)
		if v0 == v1 || pos < minLeaf || n-pos < minLeaf {
			continue
		}
		nl, nr := float64(pos), float64(n-pos)
		varL := sqL/nl - (sumL/nl)*(sumL/nl)
		varR := sqR/nr - (sumR/nr)*(sumR/nr)
		if varL < 0 {
			varL = 0
		}
		if varR < 0 {
			varR = 0
		}
		gain := parentImp - (nl/fn)*varL - (nr/fn)*varR
		if gain > bestGain {
			bestGain = gain
			bestThr = v0 + (v1-v0)/2
		}
	}
	return bestThr, bestGain
}
