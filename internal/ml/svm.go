package ml

import (
	"math"
	"math/rand"
)

// SVMConfig controls linear (Pegasos) SVM training.
type SVMConfig struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed seeds the SGD sample order.
	Seed int64
}

// LinearSVM is a one-vs-rest linear SVM over standardized features.
type LinearSVM struct {
	// W is classes×d (a single row for binary, trained as +1/−1).
	W       []float64
	B       []float64
	classes int
	d       int
	std     *Standardization
}

// FitLinearSVM trains a one-vs-rest hinge-loss SVM with the Pegasos
// subgradient method.
func FitLinearSVM(ds *Dataset, cfg SVMConfig) *LinearSVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	n, d, c := sds.N, sds.D, sds.Classes
	m := &LinearSVM{
		W:       make([]float64, c*d),
		B:       make([]float64, c),
		classes: c,
		d:       d,
		std:     std,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	for k := 0; k < c; k++ {
		w := m.W[k*d : (k+1)*d]
		b := 0.0
		t := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				t++
				eta := 1 / (cfg.Lambda * float64(t))
				y := -1.0
				if sds.Label(i) == k {
					y = 1
				}
				row := sds.Row(i)
				margin := b
				for j, v := range row {
					margin += w[j] * v
				}
				margin *= y
				// w ← (1−ηλ)w (+ ηy·x if margin < 1)
				shrink := 1 - eta*cfg.Lambda
				if shrink < 0 {
					shrink = 0
				}
				for j := range w {
					w[j] *= shrink
				}
				if margin < 1 {
					for j, v := range row {
						w[j] += eta * y * v
					}
					b += eta * y
				}
			}
		}
		m.B[k] = b
	}
	return m
}

// Predict returns the class with the highest one-vs-rest score (for binary
// problems this reduces to the sign of the positive-class score).
func (m *LinearSVM) Predict(x []float64) float64 {
	sx := m.std.ApplyVec(x)
	best, bestK := math.Inf(-1), 0
	for k := 0; k < m.classes; k++ {
		w := m.W[k*m.d : (k+1)*m.d]
		s := m.B[k]
		for j, v := range sx {
			s += w[j] * v
		}
		if s > best {
			best, bestK = s, k
		}
	}
	return float64(bestK)
}

// FeatureWeights returns the per-feature ℓ2 norm across class weight vectors,
// usable as a feature ranking.
func (m *LinearSVM) FeatureWeights() []float64 {
	out := make([]float64, m.d)
	for j := 0; j < m.d; j++ {
		s := 0.0
		for k := 0; k < m.classes; k++ {
			w := m.W[k*m.d+j]
			s += w * w
		}
		out[j] = math.Sqrt(s)
	}
	return out
}

// RBFSVMConfig controls kernelized (RBF) SVM training.
type RBFSVMConfig struct {
	// Lambda is the regularization strength (default 1e-2).
	Lambda float64
	// Gamma is the RBF width exp(−γ‖x−x'‖²); <= 0 selects 1/(d·var) as in
	// scikit-learn's "scale" heuristic.
	Gamma float64
	// Epochs is the number of kernel-Pegasos passes (default 10).
	Epochs int
	// Seed seeds the SGD sample order.
	Seed int64
}

// RBFSVM is a one-vs-rest kernel SVM trained with kernelized Pegasos. It
// stores the (standardized) training set and per-class dual coefficients.
type RBFSVM struct {
	x       []float64
	n, d    int
	alpha   []float64 // classes×n dual coefficients (signed counts / λT)
	labels  []int
	classes int
	gamma   float64
	std     *Standardization
}

// FitRBFSVM trains a one-vs-rest RBF-kernel SVM via kernelized Pegasos.
// Training is O(epochs·n²·d); intended for coreset-sized inputs.
func FitRBFSVM(ds *Dataset, cfg RBFSVMConfig) *RBFSVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-2
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	n, d, c := sds.N, sds.D, sds.Classes
	gamma := cfg.Gamma
	if gamma <= 0 {
		// Features are standardized, so per-feature variance ≈ 1 and the
		// "scale" heuristic reduces to 1/d.
		gamma = 1 / float64(d)
	}
	m := &RBFSVM{
		x:       sds.X,
		n:       n,
		d:       d,
		alpha:   make([]float64, c*n),
		labels:  make([]int, n),
		classes: c,
		gamma:   gamma,
		std:     std,
	}
	for i := 0; i < n; i++ {
		m.labels[i] = sds.Label(i)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Precompute the training kernel matrix once: training then costs
	// O(epochs·n²) instead of O(epochs·n²·d).
	gram := make([]float64, n*n)
	for i := 0; i < n; i++ {
		gram[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			v := m.kernel(sds.Row(i), sds.Row(j))
			gram[i*n+j] = v
			gram[j*n+i] = v
		}
	}
	// Count-based kernel Pegasos: alpha holds the number of margin
	// violations per sample; score(x) = (1/λt)·Σ_i alpha_i·y_i·K(x_i, x).
	for k := 0; k < c; k++ {
		counts := make([]float64, n)
		t := 0
		total := cfg.Epochs * n
		for step := 0; step < total; step++ {
			t++
			i := rng.Intn(n)
			yi := -1.0
			if m.labels[i] == k {
				yi = 1
			}
			s := 0.0
			grow := gram[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				if counts[j] == 0 {
					continue
				}
				yj := -1.0
				if m.labels[j] == k {
					yj = 1
				}
				s += counts[j] * yj * grow[j]
			}
			s *= yi / (cfg.Lambda * float64(t))
			if s < 1 {
				counts[i]++
			}
		}
		// Freeze dual coefficients scaled by the final 1/(λT).
		inv := 1 / (cfg.Lambda * float64(t))
		arow := m.alpha[k*n : (k+1)*n]
		for i := range counts {
			arow[i] = counts[i] * inv
		}
	}
	return m
}

// kernel evaluates the RBF kernel between standardized vectors a and b.
func (m *RBFSVM) kernel(a, b []float64) float64 {
	s := 0.0
	for j, v := range a {
		dv := v - b[j]
		s += dv * dv
	}
	return math.Exp(-m.gamma * s)
}

// Predict returns the class with the highest dual score.
func (m *RBFSVM) Predict(x []float64) float64 {
	sx := m.std.ApplyVec(x)
	best, bestK := math.Inf(-1), 0
	for k := 0; k < m.classes; k++ {
		arow := m.alpha[k*m.n : (k+1)*m.n]
		s := 0.0
		for i := 0; i < m.n; i++ {
			if arow[i] == 0 {
				continue
			}
			yi := -1.0
			if m.labels[i] == k {
				yi = 1
			}
			s += arow[i] * yi * m.kernel(sx, m.x[i*m.d:(i+1)*m.d])
		}
		if s > best {
			best, bestK = s, k
		}
	}
	return float64(bestK)
}
