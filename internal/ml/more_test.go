package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForestImportancesOnConstantTarget(t *testing.T) {
	// A constant target gives no splits and therefore zero importances.
	n := 50
	x := make([]float64, n*2)
	y := make([]float64, n)
	rng := newTestRNG(81)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ds, _ := NewDataset(x, n, 2, y, Regression, 0)
	f := FitForest(ds, ForestConfig{NTrees: 5, Seed: 1})
	for j, v := range f.Importances() {
		if v != 0 {
			t.Fatalf("importance[%d] = %v on constant target", j, v)
		}
	}
	if got := f.Predict(ds.Row(0)); got != 0 {
		t.Fatalf("constant-target prediction = %v", got)
	}
}

func TestForestSingleSample(t *testing.T) {
	ds, _ := NewDataset([]float64{1}, 1, 1, []float64{7}, Regression, 0)
	f := FitForest(ds, ForestConfig{NTrees: 3, Seed: 1})
	if got := f.Predict([]float64{5}); got != 7 {
		t.Fatalf("single-sample forest predicts %v", got)
	}
}

func TestTreeMTryOne(t *testing.T) {
	ds := makeClassification(100, 2, 2, 82)
	rng := newTestRNG(83)
	tree := FitTree(ds, nil, TreeConfig{MTry: 1, MaxDepth: 6}, rng)
	if tree.NumNodes() < 3 {
		t.Fatal("MTry=1 tree failed to split at all")
	}
}

func TestRBFSVMGammaDefault(t *testing.T) {
	ds := makeClassification(80, 2, 2, 84)
	m := FitRBFSVM(ds, RBFSVMConfig{Seed: 1, Epochs: 3})
	if m.gamma != 1/float64(ds.D) {
		t.Fatalf("default gamma = %v, want %v", m.gamma, 1/float64(ds.D))
	}
}

func TestLogisticFeatureWeightsLength(t *testing.T) {
	ds := makeClassification(60, 1, 3, 85)
	m := FitLogistic(ds, LogisticConfig{MaxIter: 10})
	if len(m.FeatureWeights()) != ds.D {
		t.Fatal("feature weights length mismatch")
	}
}

func TestPredictAllLength(t *testing.T) {
	ds := makeRegression(30, 1, 86)
	m, err := FitRidge(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := PredictAll(m, ds); len(got) != ds.N {
		t.Fatalf("PredictAll length = %d", len(got))
	}
}

// Property: forest classification predictions are valid class codes on
// arbitrary (finite) inputs.
func TestForestPredictionRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		classes := 2 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		x := make([]float64, n*d)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			y[i] = float64(rng.Intn(classes))
		}
		ds, err := NewDataset(x, n, d, y, Classification, classes)
		if err != nil {
			return false
		}
		forest := FitForest(ds, ForestConfig{NTrees: 5, MaxDepth: 4, Seed: seed})
		for i := 0; i < n; i++ {
			p := int(forest.Predict(ds.Row(i)))
			if p < 0 || p >= classes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: lasso coefficients are finite for arbitrary (finite, non-empty)
// regression data.
func TestLassoFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		d := 1 + rng.Intn(5)
		x := make([]float64, n*d)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		for i := range y {
			y[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		ds, err := NewDataset(x, n, d, y, Regression, 0)
		if err != nil {
			return false
		}
		m := FitLasso(ds, LassoConfig{Lambda: 0.1, MaxIter: 50})
		for _, w := range m.Coefficients() {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: standardization then ApplyVec is the identity on training rows
// up to the z-scoring map (mean ~0 overall).
func TestStandardizationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		d := 1 + rng.Intn(4)
		x := make([]float64, n*d)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		ds, err := NewDataset(x, n, d, make([]float64, n), Regression, 0)
		if err != nil {
			return false
		}
		std := FitStandardization(ds)
		// Invert: x = z*scale + mean must reproduce the original.
		for i := 0; i < n; i++ {
			z := std.ApplyVec(ds.Row(i))
			for j := 0; j < d; j++ {
				back := z[j]*std.Scale[j] + std.Mean[j]
				if math.Abs(back-ds.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
