package ml

import (
	"testing"
)

func BenchmarkForestFitClassification(b *testing.B) {
	ds := makeClassification(500, 4, 26, 101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitForest(ds, ForestConfig{NTrees: 40, MaxDepth: 10, Seed: int64(i), Parallel: true})
	}
}

func BenchmarkForestFitRegression(b *testing.B) {
	ds := makeRegression(500, 28, 102)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitForest(ds, ForestConfig{NTrees: 40, MaxDepth: 10, Seed: int64(i), Parallel: true})
	}
}

func BenchmarkForestPredict(b *testing.B) {
	ds := makeClassification(500, 4, 26, 103)
	f := FitForest(ds, ForestConfig{NTrees: 40, MaxDepth: 10, Seed: 1, Parallel: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(ds.Row(i % ds.N))
	}
}

func BenchmarkSparse21Wide(b *testing.B) {
	// The RIFS regime: more features than rows.
	ds := makeRegression(200, 400, 104)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLassoCoordinateDescent(b *testing.B) {
	ds := makeRegression(400, 100, 105)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitLasso(ds, LassoConfig{Lambda: 0.1})
	}
}

func BenchmarkLogisticFit(b *testing.B) {
	ds := makeClassification(400, 3, 30, 106)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitLogistic(ds, LogisticConfig{MaxIter: 100})
	}
}

func BenchmarkMLPFit(b *testing.B) {
	ds := makeClassification(400, 3, 12, 107)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitMLP(ds, MLPConfig{Epochs: 20, Seed: int64(i)})
	}
}
