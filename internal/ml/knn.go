package ml

import (
	"container/heap"
	"math"
)

// KNN is a brute-force k-nearest-neighbours predictor over standardized
// features: majority vote for classification, mean for regression.
type KNN struct {
	x       []float64
	y       []float64
	n, d, k int
	task    Task
	classes int
	std     *Standardization
}

// FitKNN stores the (standardized) training set for k-NN prediction.
func FitKNN(ds *Dataset, k int) *KNN {
	if k <= 0 {
		k = 5
	}
	if k > ds.N {
		k = ds.N
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	return &KNN{
		x:       sds.X,
		y:       sds.Y,
		n:       sds.N,
		d:       sds.D,
		k:       k,
		task:    sds.Task,
		classes: sds.Classes,
		std:     std,
	}
}

// neighborHeap is a max-heap of (distance, index) pairs keeping the k
// smallest distances seen.
type neighborHeap struct {
	dist []float64
	idx  []int
}

func (h *neighborHeap) Len() int           { return len(h.dist) }
func (h *neighborHeap) Less(i, j int) bool { return h.dist[i] > h.dist[j] }
func (h *neighborHeap) Swap(i, j int) {
	h.dist[i], h.dist[j] = h.dist[j], h.dist[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *neighborHeap) Push(x any) {
	p := x.([2]float64)
	h.dist = append(h.dist, p[0])
	h.idx = append(h.idx, int(p[1]))
}
func (h *neighborHeap) Pop() any {
	n := len(h.dist) - 1
	p := [2]float64{h.dist[n], float64(h.idx[n])}
	h.dist = h.dist[:n]
	h.idx = h.idx[:n]
	return p
}

// Predict returns the k-NN prediction for x.
func (m *KNN) Predict(x []float64) float64 {
	sx := m.std.ApplyVec(x)
	h := &neighborHeap{}
	heap.Init(h)
	for i := 0; i < m.n; i++ {
		row := m.x[i*m.d : (i+1)*m.d]
		dist := 0.0
		for j, v := range sx {
			dv := v - row[j]
			dist += dv * dv
		}
		if h.Len() < m.k {
			heap.Push(h, [2]float64{dist, float64(i)})
		} else if dist < h.dist[0] {
			h.dist[0] = dist
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	if m.task == Classification {
		votes := make([]int, m.classes)
		for _, i := range h.idx {
			votes[int(m.y[i])]++
		}
		best, bestK := -1, 0
		for k, v := range votes {
			if v > best {
				best, bestK = v, k
			}
		}
		return float64(bestK)
	}
	s := 0.0
	for _, i := range h.idx {
		s += m.y[i]
	}
	if len(h.idx) == 0 {
		return math.NaN()
	}
	return s / float64(len(h.idx))
}
