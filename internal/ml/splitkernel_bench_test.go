package ml

import "testing"

// Paired split-kernel benchmarks behind `make bench-select`: the live kernel
// ("presorted" — the adaptive presorted/flat scaffold) against the preserved
// sort-per-node kernel ("sorted"); cmd/benchjson reduces each pair to a
// headline speedup ratio.

// benchSelectKernel runs FitForest over ds under both kernels as paired
// sub-benchmarks.
func benchSelectKernel(b *testing.B, ds *Dataset, cfg ForestConfig) {
	b.Run("presorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FitForest(ds, cfg)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		legacy := cfg
		legacy.legacyKernel = true
		for i := 0; i < b.N; i++ {
			FitForest(ds, legacy)
		}
	})
}

// BenchmarkSelectForestCoreset is the RIFS selection-forest shape: a small
// coreset with many (mostly noise) columns, classification mtry = √d — the
// flat regime of the adaptive kernel.
func BenchmarkSelectForestCoreset(b *testing.B) {
	ds := makeClassification(160, 6, 144, 201)
	benchSelectKernel(b, ds, ForestConfig{NTrees: 20, MaxDepth: 10, Seed: 7, Parallel: true})
}

// BenchmarkSelectForestRegression is the regression ranking-forest shape:
// mtry = d/3 pushes the root into the presorted regime.
func BenchmarkSelectForestRegression(b *testing.B) {
	ds := makeRegression(500, 28, 202)
	benchSelectKernel(b, ds, ForestConfig{NTrees: 20, MaxDepth: 10, Seed: 7, Parallel: true})
}

// BenchmarkSelectForestEvaluate is the downstream evaluation-forest shape:
// thousands of samples over few columns, all presorted until deep subtrees.
func BenchmarkSelectForestEvaluate(b *testing.B) {
	ds := makeClassification(3000, 5, 15, 203)
	benchSelectKernel(b, ds, ForestConfig{NTrees: 20, MaxDepth: 10, Seed: 7, Parallel: true})
}

// BenchmarkSelectForestRepetitions is the run-level split-cache pair over
// the RIFS repetition shape: the same forest fit from a warm run-level cache
// view ("cached" — what every repetition after the first pays) versus
// building its own per-forest split set ("uncached" — what every repetition
// paid before the cache existed). The cached variant's global orders also
// light up the counting-scan extraction at large nodes.
func BenchmarkSelectForestRepetitions(b *testing.B) {
	ds := makeClassification(160, 6, 144, 204)
	cfg := ForestConfig{NTrees: 20, MaxDepth: 10, Seed: 7, Parallel: true}
	b.Run("cached", func(b *testing.B) {
		cache := NewSplitCache(ds)
		idx := make([]int, ds.D)
		for j := range idx {
			idx[j] = j
		}
		cache.Columns(idx, true) // run-level cold build, outside the reps
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.AttachSplits(cache.View(cache.Columns(idx, true), nil))
			FitForest(ds, cfg)
			ds.AttachSplits(nil)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FitForest(ds, cfg)
		}
	})
}
