package ml

import (
	"math"
	"math/rand"
)

// MLPConfig controls feed-forward network training. The paper's §9 lists
// neural networks as a future-work estimator; this is a compact multilayer
// perceptron (ReLU hidden layers, softmax or linear output) trained with
// mini-batch Adam, usable anywhere an eval.Fitter is expected.
type MLPConfig struct {
	// Hidden lists hidden-layer widths (default [32]).
	Hidden []int
	// Epochs is the number of passes over the data (default 60).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 1e-2).
	LearningRate float64
	// L2 is the weight-decay strength (default 1e-4).
	L2 float64
	// Seed drives initialization and batch order.
	Seed int64
}

// MLP is a fitted feed-forward network over standardized features.
type MLP struct {
	weights [][]float64 // per layer, (in+1)×out row-major with bias row last
	dims    []int       // layer widths including input and output
	task    Task
	classes int
	std     *Standardization
	yMean   float64 // regression target centering
}

// FitMLP trains a multilayer perceptron on ds.
func FitMLP(ds *Dataset, cfg MLPConfig) *MLP {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-2
	}
	if cfg.L2 <= 0 {
		cfg.L2 = 1e-4
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)

	out := 1
	if sds.Task == Classification {
		out = sds.Classes
	}
	dims := append(append([]int{sds.D}, cfg.Hidden...), out)
	m := &MLP{dims: dims, task: sds.Task, classes: sds.Classes, std: std}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l+1 < len(dims); l++ {
		in, outW := dims[l], dims[l+1]
		w := make([]float64, (in+1)*outW)
		scale := math.Sqrt(2 / float64(in)) // He initialization for ReLU
		for i := 0; i < in*outW; i++ {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
	}

	// Regression target centering stabilizes the linear output layer.
	if sds.Task == Regression {
		for _, v := range sds.Y {
			m.yMean += v
		}
		m.yMean /= float64(sds.N)
	}

	// Adam state.
	mom := make([][]float64, len(m.weights))
	vel := make([][]float64, len(m.weights))
	grads := make([][]float64, len(m.weights))
	for l := range m.weights {
		mom[l] = make([]float64, len(m.weights[l]))
		vel[l] = make([]float64, len(m.weights[l]))
		grads[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	order := rng.Perm(sds.N)
	acts := make([][]float64, len(dims))   // layer activations
	deltas := make([][]float64, len(dims)) // layer error terms
	for l, d := range dims {
		acts[l] = make([]float64, d)
		deltas[l] = make([]float64, d)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(sds.N, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < sds.N; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > sds.N {
				end = sds.N
			}
			for l := range grads {
				for i := range grads[l] {
					grads[l][i] = 0
				}
			}
			for _, i := range order[start:end] {
				m.forward(sds.Row(i), acts)
				// Output delta.
				outAct := acts[len(acts)-1]
				dOut := deltas[len(deltas)-1]
				if sds.Task == Classification {
					probs := append([]float64{}, outAct...)
					softmaxInPlace(probs)
					for k := range dOut {
						dOut[k] = probs[k]
						if k == sds.Label(i) {
							dOut[k] -= 1
						}
					}
				} else {
					dOut[0] = outAct[0] - (sds.Y[i] - m.yMean)
				}
				m.backward(acts, deltas, grads)
			}
			// Adam update.
			step++
			batch := float64(end - start)
			lr := cfg.LearningRate *
				math.Sqrt(1-math.Pow(beta2, float64(step))) /
				(1 - math.Pow(beta1, float64(step)))
			for l := range m.weights {
				w := m.weights[l]
				for i := range w {
					g := grads[l][i]/batch + cfg.L2*w[i]
					mom[l][i] = beta1*mom[l][i] + (1-beta1)*g
					vel[l][i] = beta2*vel[l][i] + (1-beta2)*g*g
					w[i] -= lr * mom[l][i] / (math.Sqrt(vel[l][i]) + eps)
				}
			}
		}
	}
	return m
}

// forward fills acts with the network's layer activations for input x
// (unstandardized handled by caller at predict time; training uses
// pre-standardized rows).
func (m *MLP) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := 0; l+1 < len(m.dims); l++ {
		in, out := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		prev := acts[l]
		next := acts[l+1]
		for o := 0; o < out; o++ {
			s := w[in*out+o] // bias row
			for i := 0; i < in; i++ {
				s += prev[i] * w[i*out+o]
			}
			if l+2 < len(m.dims) && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			next[o] = s
		}
	}
}

// backward accumulates gradients given filled activations and the output
// delta already placed in deltas[last].
func (m *MLP) backward(acts, deltas [][]float64, grads [][]float64) {
	for l := len(m.dims) - 2; l >= 0; l-- {
		in, out := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		g := grads[l]
		prev := acts[l]
		dNext := deltas[l+1]
		// Weight and bias gradients.
		for i := 0; i < in; i++ {
			if prev[i] == 0 {
				continue
			}
			for o := 0; o < out; o++ {
				g[i*out+o] += prev[i] * dNext[o]
			}
		}
		for o := 0; o < out; o++ {
			g[in*out+o] += dNext[o]
		}
		if l == 0 {
			break
		}
		// Propagate delta through the layer and ReLU derivative.
		dPrev := deltas[l]
		for i := 0; i < in; i++ {
			s := 0.0
			for o := 0; o < out; o++ {
				s += w[i*out+o] * dNext[o]
			}
			if acts[l][i] <= 0 {
				s = 0
			}
			dPrev[i] = s
		}
	}
}

// Predict returns the network's prediction for x: argmax class for
// classification, value for regression.
func (m *MLP) Predict(x []float64) float64 {
	sx := m.std.ApplyVec(x)
	acts := make([][]float64, len(m.dims))
	for l, d := range m.dims {
		acts[l] = make([]float64, d)
	}
	m.forward(sx, acts)
	outAct := acts[len(acts)-1]
	if m.task == Classification {
		best, bestK := math.Inf(-1), 0
		for k, v := range outAct {
			if v > best {
				best, bestK = v, k
			}
		}
		return float64(bestK)
	}
	return outAct[0] + m.yMean
}
