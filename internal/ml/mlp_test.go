package ml

import (
	"math"
	"testing"
)

func TestMLPBinaryClassification(t *testing.T) {
	ds := makeClassification(400, 2, 3, 71)
	m := FitMLP(ds, MLPConfig{Seed: 1, Epochs: 40})
	if acc := accuracyOf(m, ds); acc < 0.9 {
		t.Fatalf("mlp accuracy = %v", acc)
	}
}

func TestMLPSolvesXOR(t *testing.T) {
	// XOR needs a hidden layer — the classic non-linear sanity check.
	var x []float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		x = append(x, a, b)
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	ds, _ := NewDataset(x, 200, 2, y, Classification, 2)
	m := FitMLP(ds, MLPConfig{Hidden: []int{16}, Epochs: 200, Seed: 2})
	if acc := accuracyOf(m, ds); acc < 0.99 {
		t.Fatalf("mlp XOR accuracy = %v", acc)
	}
}

func TestMLPRegression(t *testing.T) {
	ds := makeRegression(500, 2, 72)
	m := FitMLP(ds, MLPConfig{Hidden: []int{24}, Epochs: 80, Seed: 3})
	var ssRes, ssTot, mean float64
	for _, v := range ds.Y {
		mean += v
	}
	mean /= float64(ds.N)
	for i := 0; i < ds.N; i++ {
		d := m.Predict(ds.Row(i)) - ds.Y[i]
		ssRes += d * d
		ssTot += (ds.Y[i] - mean) * (ds.Y[i] - mean)
	}
	if r2 := 1 - ssRes/ssTot; r2 < 0.85 {
		t.Fatalf("mlp regression R² = %v", r2)
	}
}

func TestMLPMulticlass(t *testing.T) {
	// Three clusters in 2-D.
	n := 300
	x := make([]float64, n*2)
	y := make([]float64, n)
	rng := newTestRNG(73)
	centers := [][2]float64{{0, 0}, {4, 0}, {2, 4}}
	for i := 0; i < n; i++ {
		k := i % 3
		y[i] = float64(k)
		x[i*2] = centers[k][0] + 0.5*rng.NormFloat64()
		x[i*2+1] = centers[k][1] + 0.5*rng.NormFloat64()
	}
	ds, _ := NewDataset(x, n, 2, y, Classification, 3)
	m := FitMLP(ds, MLPConfig{Seed: 4, Epochs: 60})
	if acc := accuracyOf(m, ds); acc < 0.95 {
		t.Fatalf("mlp multiclass accuracy = %v", acc)
	}
}

func TestMLPDeterministic(t *testing.T) {
	ds := makeClassification(150, 2, 2, 74)
	a := FitMLP(ds, MLPConfig{Seed: 9, Epochs: 10})
	b := FitMLP(ds, MLPConfig{Seed: 9, Epochs: 10})
	for i := 0; i < ds.N; i++ {
		if a.Predict(ds.Row(i)) != b.Predict(ds.Row(i)) {
			t.Fatal("same seed must train identical networks")
		}
	}
}

func TestMLPPredictionFinite(t *testing.T) {
	ds := makeRegression(100, 1, 75)
	m := FitMLP(ds, MLPConfig{Epochs: 20, Seed: 5})
	for i := 0; i < ds.N; i++ {
		if v := m.Predict(ds.Row(i)); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite prediction %v", v)
		}
	}
}
