package ml

import (
	"github.com/arda-ml/arda/internal/parallel"
)

// ForestJob pairs a dataset with the forest configuration to fit on it.
type ForestJob struct {
	DS  *Dataset
	Cfg ForestConfig
}

// FitForests fits every job's forest in one flattened parallel pass: all
// (forest, tree) pairs are submitted together, so small forests no longer
// serialize behind a per-forest barrier and the pool drains one long queue
// instead of many short ones. Each pair's RNG derives from its own forest's
// seed and tree index exactly as FitForest does, and tree t of job f lands
// at Trees[t] of forest f regardless of scheduling, so the result is
// bit-identical to fitting the jobs one FitForest at a time — at any worker
// count. Cfg.Parallel is ignored; the workers argument (0 = process-wide
// maximum) governs the whole wave.
//
// Jobs with a matching attached split view (AttachSplits) reuse it; the
// rest build their own split set up front.
func FitForests(workers int, jobs []ForestJob) []*Forest {
	forests := make([]*Forest, len(jobs))
	type jobState struct {
		ss *splitSet
		tc TreeConfig
		cfg ForestConfig
	}
	states := make([]jobState, len(jobs))
	offsets := make([]int, len(jobs)+1)
	for i, job := range jobs {
		cfg, tc := resolveForestConfig(job.DS, job.Cfg)
		if cfg.legacyKernel {
			// The reference kernel has no shared split set to schedule
			// across; keep its per-forest path.
			for k, j := range jobs {
				forests[k] = FitForest(j.DS, j.Cfg)
			}
			return forests
		}
		states[i] = jobState{tc: tc, cfg: cfg}
		offsets[i+1] = offsets[i] + cfg.NTrees
		forests[i] = &Forest{
			Trees:   make([]*Tree, cfg.NTrees),
			task:    job.DS.Task,
			classes: job.DS.Classes,
		}
	}
	for i, job := range jobs {
		states[i].ss = splitSetFor(job.DS, states[i].tc, workers)
	}
	total := offsets[len(jobs)]
	jobOf := make([]int32, total)
	for i := range jobs {
		for t := offsets[i]; t < offsets[i+1]; t++ {
			jobOf[t] = int32(i)
		}
	}
	parallel.ForEach(workers, total, func(g int) {
		i := jobOf[g]
		t := g - offsets[i]
		st := &states[i]
		tm := startTreeTimer(st.cfg.TreeDur)
		forests[i].Trees[t] = bootstrapTree(st.ss, st.tc, st.cfg.Seed+int64(t)*7919)
		tm.finish()
	})
	for i, job := range jobs {
		aggregateImportances(forests[i], job.DS.D)
	}
	return forests
}
