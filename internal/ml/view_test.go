package ml

import (
	"math"
	"testing"
)

// viewFixture is a 4×4 dense dataset with distinct entries.
func viewFixture() *Dataset {
	x := make([]float64, 16)
	y := make([]float64, 4)
	for i := range x {
		x[i] = float64(i)
	}
	for i := range y {
		y[i] = float64(i)
	}
	ds, err := NewDataset(x, 4, 4, y, Regression, 0)
	if err != nil {
		panic(err)
	}
	return ds
}

func TestViewReadsThroughIndirection(t *testing.T) {
	ds := viewFixture()
	v := ds.View([]int{2, 0})
	if !v.IsView() || ds.IsView() {
		t.Fatal("IsView flags wrong")
	}
	if v.N != 4 || v.D != 2 {
		t.Fatalf("view shape %dx%d", v.N, v.D)
	}
	for i := 0; i < 4; i++ {
		if v.At(i, 0) != ds.At(i, 2) || v.At(i, 1) != ds.At(i, 0) {
			t.Fatalf("row %d: At mismatch", i)
		}
	}
	row := v.Row(1)
	if row[0] != 6 || row[1] != 4 {
		t.Fatalf("Row(1) = %v", row)
	}
	scratch := make([]float64, 2)
	got := v.RowTo(2, scratch)
	if &got[0] != &scratch[0] {
		t.Fatal("RowTo did not reuse the scratch buffer")
	}
	if got[0] != 10 || got[1] != 8 {
		t.Fatalf("RowTo(2) = %v", got)
	}
	// Writes to the backing dataset show through the view.
	ds.X[1*4+2] = 99
	if v.At(1, 0) != 99 {
		t.Fatal("view did not observe backing write")
	}
}

func TestViewComposes(t *testing.T) {
	ds := viewFixture()
	v := ds.View([]int{3, 1, 0})
	vv := v.View([]int{2, 0}) // -> backing columns 0, 3
	for i := 0; i < 4; i++ {
		if vv.At(i, 0) != ds.At(i, 0) || vv.At(i, 1) != ds.At(i, 3) {
			t.Fatalf("composed view row %d mismatch", i)
		}
	}
}

func TestViewSubsetAndSelectFeaturesMaterializeDense(t *testing.T) {
	ds := viewFixture()
	v := ds.View([]int{1, 3})
	sub := v.Subset([]int{2, 0})
	if sub.IsView() {
		t.Fatal("Subset of a view must be dense")
	}
	want := []float64{9, 11, 1, 3}
	for i, w := range want {
		if sub.X[i] != w {
			t.Fatalf("Subset X = %v, want %v", sub.X, want)
		}
	}
	sel := v.SelectFeatures([]int{1})
	if sel.IsView() {
		t.Fatal("SelectFeatures of a view must be dense")
	}
	for i := 0; i < 4; i++ {
		if sel.X[i] != ds.At(i, 3) {
			t.Fatalf("SelectFeatures X = %v", sel.X)
		}
	}
	mat := v.Materialize()
	if mat.IsView() || mat.D != 2 || mat.At(2, 1) != v.At(2, 1) {
		t.Fatal("Materialize broken")
	}
	if ds.Materialize() != ds {
		t.Fatal("Materialize of dense dataset must be identity")
	}
}

func TestViewGatherSubsetInto(t *testing.T) {
	ds := viewFixture()
	rows := []int{3, 1}
	cols := []int{2, 0}
	x := make([]float64, 4)
	y := make([]float64, 2)
	ds.GatherSubsetInto(rows, cols, x, y)
	want := []float64{14, 12, 6, 4}
	for i, w := range want {
		if x[i] != w {
			t.Fatalf("dense gather = %v, want %v", x, want)
		}
	}
	if y[0] != 3 || y[1] != 1 {
		t.Fatalf("dense gather y = %v", y)
	}
	v := ds.View([]int{2, 0, 1})
	v.GatherSubsetInto(rows, []int{0, 1}, x, y)
	for i, w := range want {
		if x[i] != w {
			t.Fatalf("view gather = %v, want %v", x, want)
		}
	}
}

func TestViewCleanNaNsWritesThrough(t *testing.T) {
	ds := viewFixture()
	ds.X[0*4+1] = math.NaN() // column 1: NaN, 5, 9, 13 -> mean 9
	ds.X[2*4+3] = math.NaN() // column 3 untouched by the view below
	v := ds.View([]int{1})
	v.CleanNaNs()
	if ds.At(0, 1) != 9 {
		t.Fatalf("CleanNaNs fill = %v, want column mean 9", ds.At(0, 1))
	}
	if !math.IsNaN(ds.At(2, 3)) {
		t.Fatal("CleanNaNs on a view must not touch unselected columns")
	}
}
