// Package ml implements the learning models ARDA uses, from scratch on the
// standard library: CART decision trees and random forests (classification
// and regression, with impurity-based feature importances), ridge and lasso
// linear models, logistic/softmax regression, linear and RBF-kernel SVMs,
// k-nearest neighbours, and the ℓ2,1-norm sparse-regression solver that
// powers half of RIFS's ranking ensemble.
package ml

import (
	"fmt"
	"math"
)

// Task distinguishes regression from classification datasets.
type Task int

const (
	// Regression predicts a continuous target.
	Regression Task = iota
	// Classification predicts one of Classes integer labels.
	Classification
)

// String returns the lowercase task name.
func (t Task) String() string {
	if t == Classification {
		return "classification"
	}
	return "regression"
}

// Dataset is a dense supervised learning problem: an N×D row-major design
// matrix X and a target vector Y. For classification, Y holds integer class
// codes in [0, Classes).
//
// A Dataset may also be a column-subset *view* over another dataset's
// storage (see View): X then holds the full backing matrix, stride is its
// row width, and cols maps view column j to backing column cols[j]. Views
// cost O(1) to create and read through At/RowTo without copying; Subset and
// SelectFeatures materialize dense storage, so models — which train on
// Subset outputs — never pay per-element indirection in their hot loops.
type Dataset struct {
	X       []float64
	N, D    int
	Y       []float64
	Task    Task
	Classes int

	// cols is nil for dense datasets; for views it maps view columns to
	// backing columns, and stride is the backing row width.
	cols   []int
	stride int

	// splits is an optionally attached prebuilt split view (AttachSplits):
	// forest fitting reads the dataset's columns from it instead of
	// gathering and presorting again. Never propagated by View/Subset —
	// attachment is always explicit.
	splits *splitSet
}

// NewDataset wraps the given storage, validating shape consistency.
func NewDataset(x []float64, n, d int, y []float64, task Task, classes int) (*Dataset, error) {
	if len(x) != n*d {
		return nil, fmt.Errorf("ml: X has %d entries, want %d×%d=%d", len(x), n, d, n*d)
	}
	if len(y) != n {
		return nil, fmt.Errorf("ml: Y has %d entries, want %d", len(y), n)
	}
	if task == Classification && classes < 2 {
		return nil, fmt.Errorf("ml: classification dataset needs >= 2 classes, got %d", classes)
	}
	return &Dataset{X: x, N: n, D: d, Y: y, Task: task, Classes: classes}, nil
}

// IsView reports whether the dataset reads through column indirection.
func (ds *Dataset) IsView() bool { return ds.cols != nil }

// xIndex returns the backing-array index of entry (i, j).
func (ds *Dataset) xIndex(i, j int) int {
	if ds.cols == nil {
		return i*ds.D + j
	}
	return i*ds.stride + ds.cols[j]
}

// Row returns sample i's feature vector. For dense datasets it is a subslice
// of the backing array; for views it gathers into a fresh slice — hot loops
// should use RowTo with a reused scratch buffer instead.
func (ds *Dataset) Row(i int) []float64 {
	if ds.cols == nil {
		return ds.X[i*ds.D : (i+1)*ds.D]
	}
	return ds.RowTo(i, nil)
}

// RowTo gathers sample i's feature vector into dst (allocated when nil or too
// short) and returns it. It is the index-indirection row accessor for views;
// on dense datasets it copies.
func (ds *Dataset) RowTo(i int, dst []float64) []float64 {
	if cap(dst) < ds.D {
		dst = make([]float64, ds.D)
	}
	dst = dst[:ds.D]
	if ds.cols == nil {
		copy(dst, ds.X[i*ds.D:(i+1)*ds.D])
		return dst
	}
	row := ds.X[i*ds.stride : (i+1)*ds.stride]
	for j, c := range ds.cols {
		dst[j] = row[c]
	}
	return dst
}

// At returns feature j of sample i.
func (ds *Dataset) At(i, j int) float64 {
	if ds.cols == nil {
		return ds.X[i*ds.D+j]
	}
	return ds.X[i*ds.stride+ds.cols[j]]
}

// Label returns sample i's class code (classification only).
func (ds *Dataset) Label(i int) int { return int(ds.Y[i]) }

// View returns an O(1) column-subset view sharing this dataset's storage:
// no matrix is materialized and writes to the backing dataset show through.
// Composing views composes the index maps, so a view of a view still does a
// single indirection per access.
func (ds *Dataset) View(cols []int) *Dataset {
	mapped := make([]int, len(cols))
	stride := ds.D
	if ds.cols == nil {
		copy(mapped, cols)
	} else {
		stride = ds.stride
		for j, c := range cols {
			mapped[j] = ds.cols[c]
		}
	}
	return &Dataset{
		X: ds.X, N: ds.N, D: len(cols), Y: ds.Y,
		Task: ds.Task, Classes: ds.Classes,
		cols: mapped, stride: stride,
	}
}

// Subset returns a dense dataset over the given sample indices; feature
// storage is copied (gathered through the column indirection for views).
func (ds *Dataset) Subset(idx []int) *Dataset {
	x := make([]float64, len(idx)*ds.D)
	y := make([]float64, len(idx))
	if ds.cols == nil {
		for r, i := range idx {
			copy(x[r*ds.D:(r+1)*ds.D], ds.X[i*ds.D:(i+1)*ds.D])
			y[r] = ds.Y[i]
		}
	} else {
		for r, i := range idx {
			ds.RowTo(i, x[r*ds.D:(r+1)*ds.D])
			y[r] = ds.Y[i]
		}
	}
	return &Dataset{X: x, N: len(idx), D: ds.D, Y: y, Task: ds.Task, Classes: ds.Classes}
}

// GatherSubsetInto fills x (row-major, len(rows)×len(cols)) and y with the
// given samples restricted to cols, without allocating. It is the pooled-
// scratch gather under copy-free subset scoring: callers own the buffers and
// reuse them across evaluations.
func (ds *Dataset) GatherSubsetInto(rows, cols []int, x, y []float64) {
	d := len(cols)
	if ds.cols == nil {
		for r, i := range rows {
			src := ds.X[i*ds.D : (i+1)*ds.D]
			dst := x[r*d : (r+1)*d]
			for jj, j := range cols {
				dst[jj] = src[j]
			}
			y[r] = ds.Y[i]
		}
		return
	}
	for r, i := range rows {
		src := ds.X[i*ds.stride : (i+1)*ds.stride]
		dst := x[r*d : (r+1)*d]
		for jj, j := range cols {
			dst[jj] = src[ds.cols[j]]
		}
		y[r] = ds.Y[i]
	}
}

// SelectFeatures returns a dense dataset restricted to the given feature
// columns. Use View for an O(1) non-copying subset.
func (ds *Dataset) SelectFeatures(cols []int) *Dataset {
	x := make([]float64, ds.N*len(cols))
	for i := 0; i < ds.N; i++ {
		for jj, j := range cols {
			x[i*len(cols)+jj] = ds.X[ds.xIndex(i, j)]
		}
	}
	return &Dataset{X: x, N: ds.N, D: len(cols), Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
}

// Materialize returns a dense copy of a view (itself when already dense).
func (ds *Dataset) Materialize() *Dataset {
	if ds.cols == nil {
		return ds
	}
	cols := make([]int, ds.D)
	for j := range cols {
		cols[j] = j
	}
	return ds.SelectFeatures(cols)
}

// CleanNaNs replaces NaN feature entries with the per-column mean of the
// non-NaN entries (0 if a column is entirely NaN), in place. Models in this
// package require NaN-free inputs. On a view the fills write through to the
// backing storage of the selected columns.
func (ds *Dataset) CleanNaNs() {
	for j := 0; j < ds.D; j++ {
		sum, cnt := 0.0, 0
		for i := 0; i < ds.N; i++ {
			v := ds.X[ds.xIndex(i, j)]
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		fill := 0.0
		if cnt > 0 {
			fill = sum / float64(cnt)
		}
		for i := 0; i < ds.N; i++ {
			if k := ds.xIndex(i, j); math.IsNaN(ds.X[k]) {
				ds.X[k] = fill
			}
		}
	}
}

// Model is a fitted predictor. For classification models Predict returns the
// predicted class code; for regression, the predicted value.
type Model interface {
	Predict(x []float64) float64
}

// PredictAll applies the model to every row of ds.
func PredictAll(m Model, ds *Dataset) []float64 {
	out := make([]float64, ds.N)
	for i := 0; i < ds.N; i++ {
		out[i] = m.Predict(ds.Row(i))
	}
	return out
}

// Standardization holds per-feature location/scale for z-scoring.
type Standardization struct {
	Mean, Scale []float64
}

// FitStandardization computes per-column mean and standard deviation of ds
// (scale 1 for constant columns).
func FitStandardization(ds *Dataset) *Standardization {
	s := &Standardization{Mean: make([]float64, ds.D), Scale: make([]float64, ds.D)}
	for j := 0; j < ds.D; j++ {
		sum := 0.0
		for i := 0; i < ds.N; i++ {
			sum += ds.At(i, j)
		}
		mu := sum / float64(ds.N)
		ss := 0.0
		for i := 0; i < ds.N; i++ {
			d := ds.At(i, j) - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(ds.N))
		if sd < 1e-12 {
			sd = 1
		}
		s.Mean[j] = mu
		s.Scale[j] = sd
	}
	return s
}

// Apply returns a standardized copy of ds.
func (s *Standardization) Apply(ds *Dataset) *Dataset {
	x := make([]float64, len(ds.X))
	for i := 0; i < ds.N; i++ {
		for j := 0; j < ds.D; j++ {
			x[i*ds.D+j] = (ds.At(i, j) - s.Mean[j]) / s.Scale[j]
		}
	}
	return &Dataset{X: x, N: ds.N, D: ds.D, Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
}

// ApplyVec standardizes a single feature vector into a new slice.
func (s *Standardization) ApplyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Scale[j]
	}
	return out
}
