// Package ml implements the learning models ARDA uses, from scratch on the
// standard library: CART decision trees and random forests (classification
// and regression, with impurity-based feature importances), ridge and lasso
// linear models, logistic/softmax regression, linear and RBF-kernel SVMs,
// k-nearest neighbours, and the ℓ2,1-norm sparse-regression solver that
// powers half of RIFS's ranking ensemble.
package ml

import (
	"fmt"
	"math"
)

// Task distinguishes regression from classification datasets.
type Task int

const (
	// Regression predicts a continuous target.
	Regression Task = iota
	// Classification predicts one of Classes integer labels.
	Classification
)

// String returns the lowercase task name.
func (t Task) String() string {
	if t == Classification {
		return "classification"
	}
	return "regression"
}

// Dataset is a dense supervised learning problem: an N×D row-major design
// matrix X and a target vector Y. For classification, Y holds integer class
// codes in [0, Classes).
type Dataset struct {
	X       []float64
	N, D    int
	Y       []float64
	Task    Task
	Classes int
}

// NewDataset wraps the given storage, validating shape consistency.
func NewDataset(x []float64, n, d int, y []float64, task Task, classes int) (*Dataset, error) {
	if len(x) != n*d {
		return nil, fmt.Errorf("ml: X has %d entries, want %d×%d=%d", len(x), n, d, n*d)
	}
	if len(y) != n {
		return nil, fmt.Errorf("ml: Y has %d entries, want %d", len(y), n)
	}
	if task == Classification && classes < 2 {
		return nil, fmt.Errorf("ml: classification dataset needs >= 2 classes, got %d", classes)
	}
	return &Dataset{X: x, N: n, D: d, Y: y, Task: task, Classes: classes}, nil
}

// Row returns sample i's feature vector as a subslice of the backing array.
func (ds *Dataset) Row(i int) []float64 { return ds.X[i*ds.D : (i+1)*ds.D] }

// At returns feature j of sample i.
func (ds *Dataset) At(i, j int) float64 { return ds.X[i*ds.D+j] }

// Label returns sample i's class code (classification only).
func (ds *Dataset) Label(i int) int { return int(ds.Y[i]) }

// Subset returns a dataset over the given sample indices; feature storage is
// copied.
func (ds *Dataset) Subset(idx []int) *Dataset {
	x := make([]float64, len(idx)*ds.D)
	y := make([]float64, len(idx))
	for r, i := range idx {
		copy(x[r*ds.D:(r+1)*ds.D], ds.Row(i))
		y[r] = ds.Y[i]
	}
	return &Dataset{X: x, N: len(idx), D: ds.D, Y: y, Task: ds.Task, Classes: ds.Classes}
}

// SelectFeatures returns a dataset restricted to the given feature columns.
func (ds *Dataset) SelectFeatures(cols []int) *Dataset {
	x := make([]float64, ds.N*len(cols))
	for i := 0; i < ds.N; i++ {
		row := ds.Row(i)
		for jj, j := range cols {
			x[i*len(cols)+jj] = row[j]
		}
	}
	return &Dataset{X: x, N: ds.N, D: len(cols), Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
}

// CleanNaNs replaces NaN feature entries with the per-column mean of the
// non-NaN entries (0 if a column is entirely NaN), in place. Models in this
// package require NaN-free inputs.
func (ds *Dataset) CleanNaNs() {
	for j := 0; j < ds.D; j++ {
		sum, cnt := 0.0, 0
		for i := 0; i < ds.N; i++ {
			v := ds.X[i*ds.D+j]
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		fill := 0.0
		if cnt > 0 {
			fill = sum / float64(cnt)
		}
		for i := 0; i < ds.N; i++ {
			if math.IsNaN(ds.X[i*ds.D+j]) {
				ds.X[i*ds.D+j] = fill
			}
		}
	}
}

// Model is a fitted predictor. For classification models Predict returns the
// predicted class code; for regression, the predicted value.
type Model interface {
	Predict(x []float64) float64
}

// PredictAll applies the model to every row of ds.
func PredictAll(m Model, ds *Dataset) []float64 {
	out := make([]float64, ds.N)
	for i := 0; i < ds.N; i++ {
		out[i] = m.Predict(ds.Row(i))
	}
	return out
}

// Standardization holds per-feature location/scale for z-scoring.
type Standardization struct {
	Mean, Scale []float64
}

// FitStandardization computes per-column mean and standard deviation of ds
// (scale 1 for constant columns).
func FitStandardization(ds *Dataset) *Standardization {
	s := &Standardization{Mean: make([]float64, ds.D), Scale: make([]float64, ds.D)}
	for j := 0; j < ds.D; j++ {
		sum := 0.0
		for i := 0; i < ds.N; i++ {
			sum += ds.At(i, j)
		}
		mu := sum / float64(ds.N)
		ss := 0.0
		for i := 0; i < ds.N; i++ {
			d := ds.At(i, j) - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(ds.N))
		if sd < 1e-12 {
			sd = 1
		}
		s.Mean[j] = mu
		s.Scale[j] = sd
	}
	return s
}

// Apply returns a standardized copy of ds.
func (s *Standardization) Apply(ds *Dataset) *Dataset {
	x := make([]float64, len(ds.X))
	for i := 0; i < ds.N; i++ {
		for j := 0; j < ds.D; j++ {
			x[i*ds.D+j] = (ds.At(i, j) - s.Mean[j]) / s.Scale[j]
		}
	}
	return &Dataset{X: x, N: ds.N, D: ds.D, Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
}

// ApplyVec standardizes a single feature vector into a new slice.
func (s *Standardization) ApplyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Scale[j]
	}
	return out
}
