package ml

import (
	"math"
)

// LogisticConfig controls softmax-regression fitting.
type LogisticConfig struct {
	// L2 is the ℓ2 penalty strength (default 1e-3).
	L2 float64
	// LearningRate is the initial gradient step (default 0.5).
	LearningRate float64
	// MaxIter bounds full-batch gradient steps (default 300).
	MaxIter int
	// Tol stops iteration when the loss improvement falls below it (default
	// 1e-6).
	Tol float64
}

// LogisticModel is a fitted multinomial (softmax) logistic regression over
// standardized features.
type LogisticModel struct {
	// W is classes×d in row-major order; B is the per-class intercept.
	W       []float64
	B       []float64
	classes int
	d       int
	std     *Standardization
}

// FitLogistic fits multinomial logistic regression with full-batch gradient
// descent and backtracking on divergence.
func FitLogistic(ds *Dataset, cfg LogisticConfig) *LogisticModel {
	if cfg.L2 <= 0 {
		cfg.L2 = 1e-3
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 300
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	n, d, c := sds.N, sds.D, sds.Classes
	m := &LogisticModel{
		W:       make([]float64, c*d),
		B:       make([]float64, c),
		classes: c,
		d:       d,
		std:     std,
	}
	gradW := make([]float64, c*d)
	gradB := make([]float64, c)
	probs := make([]float64, c)
	lr := cfg.LearningRate
	prevLoss := math.Inf(1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for i := range gradW {
			gradW[i] = 0
		}
		for i := range gradB {
			gradB[i] = 0
		}
		loss := 0.0
		for i := 0; i < n; i++ {
			row := sds.Row(i)
			m.scores(row, probs)
			softmaxInPlace(probs)
			label := sds.Label(i)
			p := probs[label]
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= math.Log(p)
			for k := 0; k < c; k++ {
				g := probs[k]
				if k == label {
					g -= 1
				}
				gradB[k] += g
				wrow := gradW[k*d : (k+1)*d]
				for j, v := range row {
					wrow[j] += g * v
				}
			}
		}
		inv := 1 / float64(n)
		loss *= inv
		for k := 0; k < c*d; k++ {
			gradW[k] = gradW[k]*inv + cfg.L2*m.W[k]
			loss += 0.5 * cfg.L2 * m.W[k] * m.W[k] * inv
		}
		if loss > prevLoss+1e-12 {
			lr *= 0.5
			if lr < 1e-6 {
				break
			}
		} else if prevLoss-loss < cfg.Tol {
			break
		}
		prevLoss = loss
		for k := range m.W {
			m.W[k] -= lr * gradW[k]
		}
		for k := range m.B {
			m.B[k] -= lr * gradB[k] * inv
		}
	}
	return m
}

// scores writes the raw class scores for standardized x into out.
func (m *LogisticModel) scores(x []float64, out []float64) {
	for k := 0; k < m.classes; k++ {
		w := m.W[k*m.d : (k+1)*m.d]
		s := m.B[k]
		for j, v := range x {
			s += w[j] * v
		}
		out[k] = s
	}
}

// softmaxInPlace converts raw scores to probabilities.
func softmaxInPlace(s []float64) {
	max := s[0]
	for _, v := range s[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range s {
		s[i] = math.Exp(v - max)
		sum += s[i]
	}
	for i := range s {
		s[i] /= sum
	}
}

// Predict returns the argmax class code for x.
func (m *LogisticModel) Predict(x []float64) float64 {
	sx := m.std.ApplyVec(x)
	scores := make([]float64, m.classes)
	m.scores(sx, scores)
	best, bestK := math.Inf(-1), 0
	for k, v := range scores {
		if v > best {
			best, bestK = v, k
		}
	}
	return float64(bestK)
}

// FeatureWeights returns per-feature ranking scores: the ℓ2 norm across
// classes of each feature's weights in standardized space.
func (m *LogisticModel) FeatureWeights() []float64 {
	out := make([]float64, m.d)
	for j := 0; j < m.d; j++ {
		s := 0.0
		for k := 0; k < m.classes; k++ {
			w := m.W[k*m.d+j]
			s += w * w
		}
		out[j] = math.Sqrt(s)
	}
	return out
}
