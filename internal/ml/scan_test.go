package ml

import (
	"math"
	"testing"
)

// TestScanSplitsAllTied: a fully tied column has no admissible boundary, so
// both scans must report no split (gain stays -Inf). Callers normally skip
// constant columns before scanning; this pins the scan's own behavior.
func TestScanSplitsAllTied(t *testing.T) {
	vals := []float64{3, 3, 3, 3, 3, 3}
	labels := []int32{0, 1, 0, 1, 0, 1}
	lcnt, rcnt := make([]float64, 2), make([]float64, 2)
	if _, gain := scanSplitsClass(vals, labels, lcnt, rcnt, 0.5, 1); !math.IsInf(gain, -1) {
		t.Fatalf("class scan on tied column: gain %v, want -Inf", gain)
	}
	ys := []float64{0, 1, 0, 1, 0, 1}
	if _, gain := scanSplitsReg(vals, ys, 0.25, 1); !math.IsInf(gain, -1) {
		t.Fatalf("reg scan on tied column: gain %v, want -Inf", gain)
	}
}

// TestScanSplitsMinLeafBoundary: with n=6 and minLeaf=3 only the middle
// boundary (3|3) is admissible, even when an outer boundary has the better
// gain.
func TestScanSplitsMinLeafBoundary(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	// Best unconstrained split is 1|5 (isolate the lone 1-label); minLeaf=3
	// forces the 3|3 boundary at threshold 3.5.
	labels := []int32{1, 0, 0, 0, 1, 1}
	lcnt, rcnt := make([]float64, 2), make([]float64, 2)
	parent := 0.5
	thr, gain := scanSplitsClass(vals, labels, lcnt, rcnt, parent, 3)
	if thr != 3.5 {
		t.Fatalf("class minLeaf=3 threshold %v, want 3.5", thr)
	}
	if math.IsInf(gain, -1) {
		t.Fatal("class minLeaf=3: no split found, want the middle boundary")
	}
	ys := []float64{9, 0, 0, 0, 9, 9}
	thr, gain = scanSplitsReg(vals, ys, 18, 3)
	if thr != 3.5 {
		t.Fatalf("reg minLeaf=3 threshold %v, want 3.5", thr)
	}
	if math.IsInf(gain, -1) {
		t.Fatal("reg minLeaf=3: no split found, want the middle boundary")
	}
	// minLeaf larger than n/2: no admissible boundary at all.
	if _, gain := scanSplitsClass(vals, labels, lcnt, rcnt, parent, 4); !math.IsInf(gain, -1) {
		t.Fatalf("class minLeaf=4 on n=6: gain %v, want -Inf", gain)
	}
}

// TestScanSplitsZeroGainAccepted: XOR's first cut has exactly zero Gini gain;
// the scan must still return it (gain 0, not -Inf) so trees can descend into
// nested structure — tree.go only rejects negative gains.
func TestScanSplitsZeroGainAccepted(t *testing.T) {
	vals := []float64{0, 0, 1, 1}
	labels := []int32{0, 1, 0, 1}
	lcnt, rcnt := make([]float64, 2), make([]float64, 2)
	thr, gain := scanSplitsClass(vals, labels, lcnt, rcnt, 0.5, 1)
	if gain != 0 {
		t.Fatalf("XOR boundary gain %v, want exactly 0", gain)
	}
	if thr != 0.5 {
		t.Fatalf("XOR boundary threshold %v, want 0.5", thr)
	}
}

// TestTreeIgnoresConstantFeature: a constant column can never split; the tree
// must put all its importance on the informative column, for both tasks and
// both kernel regimes.
func TestTreeIgnoresConstantFeature(t *testing.T) {
	for _, task := range []Task{Classification, Regression} {
		for _, n := range []int{40, 400} { // flat regime and presorted regime
			x := make([]float64, n*2)
			y := make([]float64, n)
			for i := 0; i < n; i++ {
				x[i*2] = 7 // constant
				x[i*2+1] = float64(i)
				y[i] = float64(i)
				if task == Classification && i < n/2 {
					y[i] = 0
				} else if task == Classification {
					y[i] = 1
				}
			}
			classes := 0
			if task == Classification {
				classes = 2
			}
			ds, err := NewDataset(x, n, 2, y, task, classes)
			if err != nil {
				t.Fatal(err)
			}
			tree := FitTree(ds, nil, TreeConfig{}, nil)
			imp := tree.Importance()
			if imp[0] != 0 {
				t.Fatalf("%v n=%d: constant feature importance %v, want 0", task, n, imp[0])
			}
			if tree.NumNodes() <= 1 {
				t.Fatalf("%v n=%d: tree never split on the informative feature", task, n)
			}
		}
	}
}

// TestTreeAllConstantFeatures: with every column constant the tree must stay
// a single leaf predicting the majority class / target mean.
func TestTreeAllConstantFeatures(t *testing.T) {
	n := 30
	x := make([]float64, n*3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i*3], x[i*3+1], x[i*3+2] = 1, 2, 3
		if i < 20 {
			y[i] = 1
		}
	}
	ds, err := NewDataset(x, n, 3, y, Classification, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree := FitTree(ds, nil, TreeConfig{}, nil)
	if tree.NumNodes() != 1 {
		t.Fatalf("all-constant features grew %d nodes, want a lone leaf", tree.NumNodes())
	}
	if got := tree.Predict([]float64{1, 2, 3}); got != 1 {
		t.Fatalf("majority prediction %v, want 1", got)
	}
}

// TestImportanceReturnsCopy: mutating the slices returned by
// Tree.Importance and Forest.Importances must not corrupt the fitted models
// (RIFS hands these slices to ranking code that is free to scribble on them).
func TestImportanceReturnsCopy(t *testing.T) {
	ds := kernelFixture(120, 4, Classification, 3)
	tree := FitTree(ds, nil, TreeConfig{}, nil)
	ti := tree.Importance()
	for j := range ti {
		ti[j] = -1
	}
	for j, v := range tree.Importance() {
		if v < 0 {
			t.Fatalf("tree importance[%d] corrupted through returned slice", j)
		}
	}
	f := FitForest(ds, ForestConfig{NTrees: 5, Seed: 1})
	fi := f.Importances()
	for j := range fi {
		fi[j] = -1
	}
	for j, v := range f.Importances() {
		if v < 0 {
			t.Fatalf("forest importance[%d] corrupted through returned slice", j)
		}
	}
}
