package ml

import (
	"math"

	"github.com/arda-ml/arda/internal/linalg"
)

// LinearModel is a fitted linear predictor y = w·x + b over standardized
// features.
type LinearModel struct {
	W   []float64
	B   float64
	std *Standardization
}

// Predict returns the linear prediction for x.
func (m *LinearModel) Predict(x []float64) float64 {
	if m.std != nil {
		x = m.std.ApplyVec(x)
	}
	return linalg.Dot(m.W, x) + m.B
}

// Coefficients returns the weight vector in standardized feature space; its
// absolute values are comparable across features and usable as a ranking.
func (m *LinearModel) Coefficients() []float64 { return m.W }

// FitRidge fits a ridge regression (quadratic loss, ℓ2 penalty lambda) on
// standardized features with an unpenalized intercept.
func FitRidge(ds *Dataset, lambda float64) (*LinearModel, error) {
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	yMean := 0.0
	for _, v := range sds.Y {
		yMean += v
	}
	yMean /= float64(sds.N)
	yc := make([]float64, sds.N)
	for i, v := range sds.Y {
		yc[i] = v - yMean
	}
	x := &linalg.Matrix{Rows: sds.N, Cols: sds.D, Data: sds.X}
	w, err := linalg.RidgeSolve(x, yc, lambda)
	if err != nil {
		return nil, err
	}
	return &LinearModel{W: w, B: yMean, std: std}, nil
}

// LassoConfig controls coordinate-descent lasso fitting.
type LassoConfig struct {
	// Lambda is the ℓ1 penalty strength (default 0.01·λmax behaviour is the
	// caller's business; a plain default of 0.1 is used when <= 0).
	Lambda float64
	// MaxIter bounds full coordinate sweeps (default 200).
	MaxIter int
	// Tol is the convergence tolerance on max coefficient change (default
	// 1e-5).
	Tol float64
}

// FitLasso fits lasso regression via cyclic coordinate descent on
// standardized features with an unpenalized intercept.
func FitLasso(ds *Dataset, cfg LassoConfig) *LinearModel {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	n, d := sds.N, sds.D
	yMean := 0.0
	for _, v := range sds.Y {
		yMean += v
	}
	yMean /= float64(n)

	w := make([]float64, d)
	// residual r = y_centered - Xw (w starts at 0).
	r := make([]float64, n)
	for i := range r {
		r[i] = sds.Y[i] - yMean
	}
	// Column squared norms (constant: standardized columns have norm² = n).
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			v := sds.At(i, j)
			s += v * v
		}
		colSq[j] = s
	}
	lam := cfg.Lambda * float64(n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] <= 1e-12 {
				continue
			}
			// rho = x_j · r + w_j * ||x_j||²
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += sds.At(i, j) * r[i]
			}
			rho += w[j] * colSq[j]
			wj := softThreshold(rho, lam) / colSq[j]
			if wj != w[j] {
				delta := wj - w[j]
				for i := 0; i < n; i++ {
					r[i] -= delta * sds.At(i, j)
				}
				if math.Abs(delta) > maxDelta {
					maxDelta = math.Abs(delta)
				}
				w[j] = wj
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	return &LinearModel{W: w, B: yMean, std: std}
}

// softThreshold is the lasso proximal operator sign(z)·max(|z|−t, 0).
func softThreshold(z, t float64) float64 {
	switch {
	case z > t:
		return z - t
	case z < -t:
		return z + t
	default:
		return 0
	}
}
