package ml

import (
	"math/rand"
	"testing"
)

// newTestRNG builds a seeded RNG for tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSparse21RegressionRanking(t *testing.T) {
	ds := makeRegression(150, 20, 21)
	res, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowNorms) != ds.D {
		t.Fatalf("row norms length = %d", len(res.RowNorms))
	}
	// Signal features 0, 1 must outrank every noise feature.
	noiseMax := 0.0
	for j := 2; j < ds.D; j++ {
		if res.RowNorms[j] > noiseMax {
			noiseMax = res.RowNorms[j]
		}
	}
	if res.RowNorms[0] <= noiseMax || res.RowNorms[1] <= noiseMax {
		t.Fatalf("signal norms %v %v not above noise max %v",
			res.RowNorms[0], res.RowNorms[1], noiseMax)
	}
	if res.Iterations < 2 {
		t.Fatalf("IRLS converged suspiciously fast: %d iterations", res.Iterations)
	}
}

func TestSparse21Classification(t *testing.T) {
	ds := makeClassification(200, 2, 20, 22)
	res, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	noiseMax := 0.0
	for j := 2; j < ds.D; j++ {
		if res.RowNorms[j] > noiseMax {
			noiseMax = res.RowNorms[j]
		}
	}
	if res.RowNorms[0] <= noiseMax || res.RowNorms[1] <= noiseMax {
		t.Fatalf("classification signal norms below noise: %v vs %v",
			res.RowNorms[:2], noiseMax)
	}
}

func TestSparse21WideProblem(t *testing.T) {
	// More features than rows — the regime ARDA actually runs in; the dual
	// Woodbury solve must stay stable.
	ds := makeRegression(60, 200, 23)
	res, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for j := range res.RowNorms {
		if res.RowNorms[j] > res.RowNorms[best] {
			best = j
		}
	}
	if best > 1 {
		t.Fatalf("top-ranked feature is %d, want 0 or 1", best)
	}
}

func TestSparse21MaxRowsSubsample(t *testing.T) {
	ds := makeRegression(500, 10, 24)
	res, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.5, MaxRows: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	noiseMax := 0.0
	for j := 2; j < ds.D; j++ {
		if res.RowNorms[j] > noiseMax {
			noiseMax = res.RowNorms[j]
		}
	}
	if res.RowNorms[0] <= noiseMax {
		t.Fatal("subsampled solve lost the signal")
	}
}

func TestSparse21GammaShrinks(t *testing.T) {
	ds := makeRegression(100, 5, 25)
	small, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	big, err := SolveSparse21(ds, Sparse21Config{Gamma: 100})
	if err != nil {
		t.Fatal(err)
	}
	sumSmall, sumBig := 0.0, 0.0
	for j := range small.RowNorms {
		sumSmall += small.RowNorms[j]
		sumBig += big.RowNorms[j]
	}
	if sumBig >= sumSmall {
		t.Fatalf("larger gamma should shrink norms: %v vs %v", sumBig, sumSmall)
	}
}

func TestSparse21RobustLabels(t *testing.T) {
	// Corrupt 10% of labels; the robust variant should still rank signal
	// features on top.
	ds := makeClassification(300, 2, 10, 26)
	rng := newTestRNG(27)
	for i := 0; i < ds.N; i += 10 {
		ds.Y[i] = float64(1 - ds.Label(i))
	}
	_ = rng
	res, err := SolveSparse21(ds, Sparse21Config{Gamma: 0.5, RobustLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	noiseMax := 0.0
	for j := 2; j < ds.D; j++ {
		if res.RowNorms[j] > noiseMax {
			noiseMax = res.RowNorms[j]
		}
	}
	if res.RowNorms[0] <= noiseMax || res.RowNorms[1] <= noiseMax {
		t.Fatal("robust-label solve lost the signal under corruption")
	}
}
