package dataframe

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MaxOneHotCardinality bounds the number of indicator columns produced when
// binarizing a categorical column. Categories beyond the most frequent
// MaxOneHotCardinality-1 are pooled into a single "…=<other>" indicator, so a
// high-cardinality key column cannot explode the feature space.
const MaxOneHotCardinality = 32

// binarizePlan computes the one-hot layout of a categorical column: the
// produced indicator names and remap, where remap[code] is the indicator
// index the code contributes to (-1 for codes absent from the data). The plan
// is a pure function of the column's codes and dictionary, which is what
// makes it cacheable across repeated encodings of an unchanged column.
func binarizePlan(c *CategoricalColumn) (names []string, remap []int) {
	counts := make([]int, len(c.Dict))
	for _, code := range c.Codes {
		if code >= 0 {
			counts[code]++
		}
	}
	order := make([]int, len(c.Dict))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	remap = make([]int, len(c.Dict))
	names = make([]string, 0, MaxOneHotCardinality)
	other := -1
	for rank, code := range order {
		if counts[code] == 0 {
			remap[code] = -1
			continue
		}
		if rank < MaxOneHotCardinality-1 || len(c.Dict) <= MaxOneHotCardinality {
			remap[code] = len(names)
			names = append(names, fmt.Sprintf("%s=%s", c.Name(), c.Dict[code]))
		} else {
			if other < 0 {
				other = len(names)
				names = append(names, fmt.Sprintf("%s=<other>", c.Name()))
			}
			remap[code] = other
		}
	}
	return names, remap
}

// Binarize converts a categorical column into a set of 0/1 numeric indicator
// columns named "<col>=<value>". Rows with missing values are 0 in every
// indicator. At most MaxOneHotCardinality indicators are produced; rarer
// categories share an "<col>=<other>" indicator.
func Binarize(c *CategoricalColumn) []*NumericColumn {
	names, remap := binarizePlan(c)
	out := make([]*NumericColumn, len(names))
	for j := range out {
		out[j] = NewNumeric(names[j], make([]float64, c.Len()))
	}
	for i, code := range c.Codes {
		if code < 0 {
			continue
		}
		if k := remap[code]; k >= 0 {
			out[k].Values[i] = 1
		}
	}
	return out
}

// EncodeCache memoizes binarize plans per categorical column across
// ToNumericView calls. The ARDA batch loop re-encodes its work table every
// batch, and carried-forward columns are unchanged between batches, so their
// count/sort/format work can be done once. Entries are keyed by column
// identity (pointer), which is only valid while columns are not mutated after
// first being encoded; the pipeline guarantees that by encoding only fully
// imputed tables. Create one cache per Augment run.
type EncodeCache struct {
	mu     sync.Mutex
	m      map[*CategoricalColumn]*binPlan
	hits   atomic.Int64
	misses atomic.Int64
}

// EncodeCacheStats is a hit/miss snapshot of an EncodeCache.
type EncodeCacheStats struct {
	// Hits counts binarize plans served from the cache.
	Hits int64
	// Misses counts plans computed (and then stored).
	Misses int64
}

// Stats returns the cache's hit/miss counts so far.
func (c *EncodeCache) Stats() EncodeCacheStats {
	if c == nil {
		return EncodeCacheStats{}
	}
	return EncodeCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// binPlan is one cached binarize layout.
type binPlan struct {
	names []string
	remap []int
}

// NewEncodeCache returns an empty encode cache.
func NewEncodeCache() *EncodeCache {
	return &EncodeCache{m: make(map[*CategoricalColumn]*binPlan)}
}

// plan returns the (possibly cached) binarize plan for col. A nil cache
// computes without memoizing.
func (c *EncodeCache) plan(col *CategoricalColumn) ([]string, []int) {
	if c == nil {
		return binarizePlan(col)
	}
	c.mu.Lock()
	p := c.m[col]
	c.mu.Unlock()
	if p != nil {
		c.hits.Add(1)
		return p.names, p.remap
	}
	c.misses.Add(1)
	names, remap := binarizePlan(col)
	c.mu.Lock()
	c.m[col] = &binPlan{names: names, remap: remap}
	c.mu.Unlock()
	return names, remap
}

// Len returns the number of cached plans.
func (c *EncodeCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// NumericView is a table rendered as a dense design matrix: time columns
// become float64 Unix seconds, categorical columns are binarized, numeric
// columns pass through. Missing numeric entries remain NaN (impute before
// training).
type NumericView struct {
	// Names holds the produced feature names, one per matrix column.
	Names []string
	// Data is the n×d design matrix in row-major order.
	Data []float64
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
}

// At returns entry (i, j) of the design matrix.
func (v *NumericView) At(i, j int) float64 { return v.Data[i*v.Cols+j] }

// Col extracts column j into dst (allocated if nil) and returns it.
func (v *NumericView) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, v.Rows)
	}
	for i := 0; i < v.Rows; i++ {
		dst[i] = v.Data[i*v.Cols+j]
	}
	return dst
}

// ToNumericView converts the table into a design matrix, excluding the named
// columns (typically the target and join keys).
func (t *Table) ToNumericView(exclude ...string) *NumericView {
	return t.toNumericView(nil, exclude)
}

// ToNumericViewCached is ToNumericView with binarize plans memoized in cache,
// for callers that re-encode tables sharing column storage (the batch loop).
func (t *Table) ToNumericViewCached(cache *EncodeCache, exclude ...string) *NumericView {
	return t.toNumericView(cache, exclude)
}

// toNumericView lays out the matrix columns in one pass over the table's
// columns, then fills each block with a direct typed loop — no per-element
// closure dispatch, and categorical blocks write only their 1s into the
// zeroed matrix instead of materializing indicator columns first.
func (t *Table) toNumericView(cache *EncodeCache, exclude []string) *NumericView {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	type block struct {
		col   Column
		name  string   // single-column blocks
		names []string // categorical blocks (indicator names)
		remap []int    // categorical blocks
		off   int      // first matrix column of the block
	}
	var blocks []block
	d := 0
	for _, c := range t.cols {
		if skip[c.Name()] {
			continue
		}
		switch col := c.(type) {
		case *NumericColumn, *TimeColumn:
			blocks = append(blocks, block{col: c, name: c.Name(), off: d})
			d++
		case *CategoricalColumn:
			names, remap := cache.plan(col)
			blocks = append(blocks, block{col: c, names: names, remap: remap, off: d})
			d += len(names)
		}
	}
	n := t.NumRows()
	view := &NumericView{
		Names: make([]string, d),
		Data:  make([]float64, n*d),
		Rows:  n,
		Cols:  d,
	}
	for _, b := range blocks {
		switch col := b.col.(type) {
		case *NumericColumn:
			view.Names[b.off] = b.name
			j := b.off
			for i, v := range col.Values {
				view.Data[i*d+j] = v
			}
		case *TimeColumn:
			view.Names[b.off] = b.name
			j := b.off
			for i, v := range col.Unix {
				if v == MissingTime {
					view.Data[i*d+j] = math.NaN()
				} else {
					view.Data[i*d+j] = float64(v)
				}
			}
		case *CategoricalColumn:
			copy(view.Names[b.off:], b.names)
			for i, code := range col.Codes {
				if code < 0 {
					continue
				}
				if k := b.remap[code]; k >= 0 {
					view.Data[i*d+b.off+k] = 1
				}
			}
		}
	}
	return view
}

// TargetVector extracts the named column as a float64 label/target vector.
// Numeric and time columns convert directly; categorical columns use their
// dictionary codes (class labels 0..k-1). Missing entries are NaN.
func (t *Table) TargetVector(name string) ([]float64, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("dataframe: table %q has no target column %q", t.name, name)
	}
	out := make([]float64, c.Len())
	switch col := c.(type) {
	case *NumericColumn:
		copy(out, col.Values)
	case *TimeColumn:
		for i, v := range col.Unix {
			if v == MissingTime {
				out[i] = math.NaN()
			} else {
				out[i] = float64(v)
			}
		}
	case *CategoricalColumn:
		for i, code := range col.Codes {
			if code < 0 {
				out[i] = math.NaN()
			} else {
				out[i] = float64(code)
			}
		}
	}
	return out, nil
}

// SelectView returns a new view containing only the given column indices of v.
func (v *NumericView) SelectView(cols []int) *NumericView {
	out := &NumericView{
		Names: make([]string, len(cols)),
		Data:  make([]float64, v.Rows*len(cols)),
		Rows:  v.Rows,
		Cols:  len(cols),
	}
	for jj, j := range cols {
		out.Names[jj] = v.Names[j]
		for i := 0; i < v.Rows; i++ {
			out.Data[i*len(cols)+jj] = v.Data[i*v.Cols+j]
		}
	}
	return out
}

// AppendView returns a new view with the columns of b appended after those of
// a. The views must have the same number of rows.
func AppendView(a, b *NumericView) *NumericView {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dataframe: appending views with %d and %d rows", a.Rows, b.Rows))
	}
	d := a.Cols + b.Cols
	out := &NumericView{
		Names: make([]string, 0, d),
		Data:  make([]float64, a.Rows*d),
		Rows:  a.Rows,
		Cols:  d,
	}
	out.Names = append(out.Names, a.Names...)
	out.Names = append(out.Names, b.Names...)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*d:], a.Data[i*a.Cols:(i+1)*a.Cols])
		copy(out.Data[i*d+a.Cols:], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
	return out
}

// GatherRows returns a new view keeping only the given row indices.
func (v *NumericView) GatherRows(idx []int) *NumericView {
	out := &NumericView{
		Names: v.Names,
		Data:  make([]float64, len(idx)*v.Cols),
		Rows:  len(idx),
		Cols:  v.Cols,
	}
	for r, i := range idx {
		copy(out.Data[r*v.Cols:(r+1)*v.Cols], v.Data[i*v.Cols:(i+1)*v.Cols])
	}
	return out
}
