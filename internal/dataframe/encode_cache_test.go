package dataframe

import (
	"fmt"
	"math"
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// encodeFixture builds a table exercising every encoded column type: numeric,
// time with missing entries, low-cardinality categorical with missing
// entries, and a categorical wide enough to trigger the <other> pooling.
func encodeFixture(rows int) *Table {
	num := make([]float64, rows)
	unix := make([]int64, rows)
	lo := make([]string, rows)
	hi := make([]string, rows)
	for i := 0; i < rows; i++ {
		num[i] = float64(i) * 1.5
		if i%7 == 0 {
			unix[i] = MissingTime
		} else {
			unix[i] = int64(i) * 3600
		}
		if i%5 == 0 {
			lo[i] = ""
		} else {
			lo[i] = fmt.Sprintf("c%d", i%3)
		}
		hi[i] = fmt.Sprintf("v%d", i%(MaxOneHotCardinality+8))
	}
	return MustNewTable("t",
		NewNumeric("num", num),
		NewTime("ts", unix),
		NewCategorical("lo", lo),
		NewCategorical("hi", hi),
		NewNumeric("target", num))
}

// viewsIdentical asserts two numeric views agree bit-for-bit.
func viewsIdentical(t *testing.T, a, b *NumericView) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for j := range a.Names {
		if a.Names[j] != b.Names[j] {
			t.Fatalf("name %d: %q vs %q", j, a.Names[j], b.Names[j])
		}
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("entry %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestToNumericViewCachedEquivalence proves the cached encode path (both the
// cold first call that fills the cache and warm reuse) is bit-identical to
// the uncached path.
func TestToNumericViewCachedEquivalence(t *testing.T) {
	tbl := encodeFixture(100)
	plain := tbl.ToNumericView("target")
	cache := NewEncodeCache()
	cold := tbl.ToNumericViewCached(cache, "target")
	if cache.Len() != 2 {
		t.Fatalf("cache has %d plans, want 2 (one per categorical column)", cache.Len())
	}
	warm := tbl.ToNumericViewCached(cache, "target")
	if cache.Len() != 2 {
		t.Fatalf("cache grew to %d plans on reuse", cache.Len())
	}
	viewsIdentical(t, plain, cold)
	viewsIdentical(t, plain, warm)
}

// TestBinarizeMatchesPlan pins Binarize to the shared plan so the two encode
// paths cannot drift.
func TestBinarizeMatchesPlan(t *testing.T) {
	tbl := encodeFixture(64)
	col := tbl.Column("hi").(*CategoricalColumn)
	names, remap := binarizePlan(col)
	inds := Binarize(col)
	if len(inds) != len(names) {
		t.Fatalf("Binarize made %d columns, plan has %d", len(inds), len(names))
	}
	for j, ind := range inds {
		if ind.Name() != names[j] {
			t.Fatalf("indicator %d named %q, plan says %q", j, ind.Name(), names[j])
		}
	}
	for i, code := range col.Codes {
		for j := range inds {
			want := 0.0
			if code >= 0 && remap[code] == j {
				want = 1
			}
			if inds[j].Values[i] != want {
				t.Fatalf("row %d indicator %d = %v, want %v", i, j, inds[j].Values[i], want)
			}
		}
	}
}

// TestToNumericViewAllocs is the allocation-regression gate for the encode
// hot loop: the typed fill must allocate O(columns) blocks, not O(cells) —
// the closure-per-element path it replaced also materialized every indicator
// column before copying it into the matrix.
func TestToNumericViewAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	tbl := encodeFixture(2000)
	cache := NewEncodeCache()
	tbl.ToNumericViewCached(cache, "target") // warm the plan cache
	allocs := testing.AllocsPerRun(10, func() {
		tbl.ToNumericViewCached(cache, "target")
	})
	// Expected: matrix + names + blocks slice + small fixed overhead. The
	// bound is loose on purpose — the regression being guarded against is
	// per-row/per-cell allocation (thousands per call).
	if allocs > 40 {
		t.Fatalf("cached encode allocates %.0f times per call, want O(columns)", allocs)
	}
}
