package dataframe

import "testing"

// BenchmarkDataplaneEncode compares the cached typed-fill encode path against
// cold encoding (which recomputes every binarize plan). Collected into
// BENCH_dataplane.json by `make bench-dataplane`.
func BenchmarkDataplaneEncode(b *testing.B) {
	tbl := encodeFixture(5000)
	b.Run("cached", func(b *testing.B) {
		cache := NewEncodeCache()
		tbl.ToNumericViewCached(cache, "target")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.ToNumericViewCached(cache, "target")
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.ToNumericView("target")
		}
	})
}
