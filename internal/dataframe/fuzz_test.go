package dataframe

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that any table it
// accepts survives a write/read round trip with stable shape and kinds.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("date,v\n2020-01-02,3.5\n,\n")
	f.Add("only_header\n")
	f.Add("a\n\"quoted, cell\"\n")
	f.Add("x,y,z\n1,2\n")   // ragged
	f.Add("a,a\n1,2\n")     // duplicate header
	f.Add("\x00,\xff\n,\n") // binary garbage
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz", &buf)
		if err != nil {
			t.Fatalf("own output rejected on re-read: %v", err)
		}
		if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				tab.NumRows(), tab.NumCols(), back.NumRows(), back.NumCols())
		}
		// Missing cells must not appear or disappear.
		if back.MissingCells() != tab.MissingCells() {
			t.Fatalf("round trip changed missing-cell count: %d -> %d",
				tab.MissingCells(), back.MissingCells())
		}
	})
}

// FuzzBinarize asserts one-hot encoding never panics and always yields
// exactly one active indicator per present value.
func FuzzBinarize(f *testing.F) {
	f.Add("a|b|a||c")
	f.Add("|||")
	f.Add("x")
	f.Fuzz(func(t *testing.T, packed string) {
		vals := strings.Split(packed, "|")
		col := NewCategorical("k", vals)
		indicators := Binarize(col)
		if len(indicators) > MaxOneHotCardinality {
			t.Fatalf("cardinality cap violated: %d indicators", len(indicators))
		}
		for i, v := range vals {
			sum := 0.0
			for _, ind := range indicators {
				sum += ind.Values[i]
			}
			if v == "" && sum != 0 {
				t.Fatalf("missing row %d has active indicators", i)
			}
			if v != "" && sum != 1 {
				t.Fatalf("row %d indicator sum = %v, want 1", i, sum)
			}
		}
	})
}
