package dataframe

import (
	"math"
	"strings"
	"testing"
)

func TestDescribeNumeric(t *testing.T) {
	tab := MustNewTable("t",
		NewNumeric("v", []float64{3, 1, math.NaN(), 2, 2}),
	)
	s := tab.Describe()
	if len(s) != 1 {
		t.Fatalf("summaries = %d", len(s))
	}
	v := s[0]
	if v.Min != 1 || v.Max != 3 || v.Mean != 2 || v.Median != 2 {
		t.Fatalf("numeric summary = %+v", v)
	}
	if v.Missing != 1 || v.Distinct != 3 {
		t.Fatalf("missing/distinct = %d/%d", v.Missing, v.Distinct)
	}
}

func TestDescribeCategorical(t *testing.T) {
	tab := MustNewTable("t",
		NewCategorical("k", []string{"b", "a", "a", "", "c", "a", "b"}),
	)
	s := tab.Describe()[0]
	if s.Distinct != 3 {
		t.Fatalf("distinct = %d", s.Distinct)
	}
	if len(s.Top) != 3 || s.Top[0] != "a" || s.Top[1] != "b" {
		t.Fatalf("top = %v", s.Top)
	}
}

func TestDescribeTime(t *testing.T) {
	tab := MustNewTable("t",
		NewTime("ts", []int64{86400, 0, MissingTime}),
	)
	s := tab.Describe()[0]
	if s.Min != 0 || s.Max != 86400 || s.Missing != 1 {
		t.Fatalf("time summary = %+v", s)
	}
}

func TestDescribeAllMissing(t *testing.T) {
	tab := MustNewTable("t", NewNumeric("v", []float64{math.NaN()}))
	s := tab.Describe()[0]
	if !math.IsNaN(s.Mean) {
		t.Fatalf("all-missing mean = %v", s.Mean)
	}
}

func TestFormatDescription(t *testing.T) {
	tab := MustNewTable("trips",
		NewTime("date", []int64{0, 86400}),
		NewCategorical("zone", []string{"a", "b"}),
		NewNumeric("count", []float64{1, 2}),
	)
	out := FormatDescription(tab.Name(), tab.NumRows(), tab.Describe())
	for _, want := range []string{"trips: 2 rows, 3 columns", "date", "1970-01-01", "zone", "distinct=2", "count", "mean=1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("description missing %q:\n%s", want, out)
		}
	}
}
