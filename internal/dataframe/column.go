// Package dataframe implements the typed columnar table substrate that every
// other part of ARDA builds on: numeric, categorical and time columns with
// missing-value support, row gathering, CSV I/O with type inference, and
// conversion to numeric design matrices (with one-hot binarization of
// categoricals) for the learning and feature-selection layers.
package dataframe

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the logical type of a column.
type Kind int

const (
	// Numeric columns hold float64 values; missing entries are NaN.
	Numeric Kind = iota
	// Categorical columns hold dictionary-encoded strings; missing entries
	// have code -1.
	Categorical
	// Time columns hold Unix timestamps in seconds; missing entries are
	// MissingTime.
	Time
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MissingTime is the sentinel for a missing value in a time column.
const MissingTime = int64(math.MinInt64)

// Column is a named, typed vector of values with missing-value support.
// Implementations are NumericColumn, CategoricalColumn and TimeColumn.
type Column interface {
	// Name returns the column name.
	Name() string
	// WithName returns a copy of the column under a new name. The copy
	// shares backing storage with the original.
	WithName(name string) Column
	// Kind returns the column's logical type.
	Kind() Kind
	// Len returns the number of entries.
	Len() int
	// IsMissing reports whether entry i is missing.
	IsMissing(i int) bool
	// MissingCount returns the number of missing entries.
	MissingCount() int
	// Gather returns a new column whose entry j is this column's entry
	// idx[j]. An index of -1 produces a missing entry.
	Gather(idx []int) Column
	// StringAt formats entry i for display or CSV output; missing entries
	// format as the empty string.
	StringAt(i int) string
	// Clone returns a deep copy of the column.
	Clone() Column
}

// NumericColumn is a float64 column. Missing values are NaN.
type NumericColumn struct {
	name   string
	Values []float64
}

// NewNumeric constructs a numeric column over the given values. The slice is
// used directly, not copied.
func NewNumeric(name string, values []float64) *NumericColumn {
	return &NumericColumn{name: name, Values: values}
}

// Name returns the column name.
func (c *NumericColumn) Name() string { return c.name }

// WithName returns a shallow copy of the column under a new name.
func (c *NumericColumn) WithName(name string) Column {
	return &NumericColumn{name: name, Values: c.Values}
}

// Kind returns Numeric.
func (c *NumericColumn) Kind() Kind { return Numeric }

// Len returns the number of entries.
func (c *NumericColumn) Len() int { return len(c.Values) }

// IsMissing reports whether entry i is NaN.
func (c *NumericColumn) IsMissing(i int) bool { return math.IsNaN(c.Values[i]) }

// MissingCount returns the number of NaN entries.
func (c *NumericColumn) MissingCount() int {
	n := 0
	for _, v := range c.Values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Gather returns a new column gathering the given row indices; -1 yields NaN.
func (c *NumericColumn) Gather(idx []int) Column {
	out := make([]float64, len(idx))
	for j, i := range idx {
		if i < 0 {
			out[j] = math.NaN()
		} else {
			out[j] = c.Values[i]
		}
	}
	return &NumericColumn{name: c.name, Values: out}
}

// StringAt formats entry i; NaN formats as "".
func (c *NumericColumn) StringAt(i int) string {
	if c.IsMissing(i) {
		return ""
	}
	return strconv.FormatFloat(c.Values[i], 'g', -1, 64)
}

// Clone returns a deep copy.
func (c *NumericColumn) Clone() Column {
	v := make([]float64, len(c.Values))
	copy(v, c.Values)
	return &NumericColumn{name: c.name, Values: v}
}

// CategoricalColumn is a dictionary-encoded string column. Codes index into
// Dict; a code of -1 marks a missing value.
type CategoricalColumn struct {
	name  string
	Codes []int
	Dict  []string
}

// NewCategorical constructs a categorical column from raw string values,
// building the dictionary in first-appearance order. Empty strings become
// missing values.
func NewCategorical(name string, values []string) *CategoricalColumn {
	codes := make([]int, len(values))
	var dict []string
	index := make(map[string]int)
	for i, v := range values {
		if v == "" {
			codes[i] = -1
			continue
		}
		code, ok := index[v]
		if !ok {
			code = len(dict)
			dict = append(dict, v)
			index[v] = code
		}
		codes[i] = code
	}
	return &CategoricalColumn{name: name, Codes: codes, Dict: dict}
}

// NewCategoricalCodes constructs a categorical column directly from codes and
// a dictionary. The slices are used directly, not copied.
func NewCategoricalCodes(name string, codes []int, dict []string) *CategoricalColumn {
	return &CategoricalColumn{name: name, Codes: codes, Dict: dict}
}

// Name returns the column name.
func (c *CategoricalColumn) Name() string { return c.name }

// WithName returns a shallow copy of the column under a new name.
func (c *CategoricalColumn) WithName(name string) Column {
	return &CategoricalColumn{name: name, Codes: c.Codes, Dict: c.Dict}
}

// Kind returns Categorical.
func (c *CategoricalColumn) Kind() Kind { return Categorical }

// Len returns the number of entries.
func (c *CategoricalColumn) Len() int { return len(c.Codes) }

// IsMissing reports whether entry i has code -1.
func (c *CategoricalColumn) IsMissing(i int) bool { return c.Codes[i] < 0 }

// MissingCount returns the number of entries with code -1.
func (c *CategoricalColumn) MissingCount() int {
	n := 0
	for _, code := range c.Codes {
		if code < 0 {
			n++
		}
	}
	return n
}

// Gather returns a new column gathering the given row indices; -1 yields a
// missing entry. The dictionary is shared with the receiver.
func (c *CategoricalColumn) Gather(idx []int) Column {
	out := make([]int, len(idx))
	for j, i := range idx {
		if i < 0 {
			out[j] = -1
		} else {
			out[j] = c.Codes[i]
		}
	}
	return &CategoricalColumn{name: c.name, Codes: out, Dict: c.Dict}
}

// StringAt formats entry i; missing entries format as "".
func (c *CategoricalColumn) StringAt(i int) string {
	if c.Codes[i] < 0 {
		return ""
	}
	return c.Dict[c.Codes[i]]
}

// Value returns the string value of entry i and whether it is present.
func (c *CategoricalColumn) Value(i int) (string, bool) {
	if c.Codes[i] < 0 {
		return "", false
	}
	return c.Dict[c.Codes[i]], true
}

// Cardinality returns the dictionary size.
func (c *CategoricalColumn) Cardinality() int { return len(c.Dict) }

// Clone returns a deep copy.
func (c *CategoricalColumn) Clone() Column {
	codes := make([]int, len(c.Codes))
	copy(codes, c.Codes)
	dict := make([]string, len(c.Dict))
	copy(dict, c.Dict)
	return &CategoricalColumn{name: c.name, Codes: codes, Dict: dict}
}

// TimeColumn is a Unix-seconds timestamp column. Missing values are
// MissingTime.
type TimeColumn struct {
	name string
	Unix []int64
}

// NewTime constructs a time column over the given Unix timestamps. The slice
// is used directly, not copied.
func NewTime(name string, unix []int64) *TimeColumn {
	return &TimeColumn{name: name, Unix: unix}
}

// Name returns the column name.
func (c *TimeColumn) Name() string { return c.name }

// WithName returns a shallow copy of the column under a new name.
func (c *TimeColumn) WithName(name string) Column {
	return &TimeColumn{name: name, Unix: c.Unix}
}

// Kind returns Time.
func (c *TimeColumn) Kind() Kind { return Time }

// Len returns the number of entries.
func (c *TimeColumn) Len() int { return len(c.Unix) }

// IsMissing reports whether entry i is MissingTime.
func (c *TimeColumn) IsMissing(i int) bool { return c.Unix[i] == MissingTime }

// MissingCount returns the number of MissingTime entries.
func (c *TimeColumn) MissingCount() int {
	n := 0
	for _, v := range c.Unix {
		if v == MissingTime {
			n++
		}
	}
	return n
}

// Gather returns a new column gathering the given row indices; -1 yields a
// missing entry.
func (c *TimeColumn) Gather(idx []int) Column {
	out := make([]int64, len(idx))
	for j, i := range idx {
		if i < 0 {
			out[j] = MissingTime
		} else {
			out[j] = c.Unix[i]
		}
	}
	return &TimeColumn{name: c.name, Unix: out}
}

// StringAt formats entry i as RFC 3339; missing entries format as "".
func (c *TimeColumn) StringAt(i int) string {
	if c.IsMissing(i) {
		return ""
	}
	return time.Unix(c.Unix[i], 0).UTC().Format(time.RFC3339)
}

// Clone returns a deep copy.
func (c *TimeColumn) Clone() Column {
	v := make([]int64, len(c.Unix))
	copy(v, c.Unix)
	return &TimeColumn{name: c.name, Unix: v}
}
