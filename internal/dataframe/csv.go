package dataframe

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
)

// timeLayouts are the timestamp formats recognized by CSV type inference,
// tried in order. Date-only layouts parse to midnight UTC.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	"01/02/2006 15:04:05",
	"01/02/2006",
}

// parseTime attempts to parse s with the known layouts, returning Unix
// seconds.
func parseTime(s string) (int64, bool) {
	for _, layout := range timeLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts.Unix(), true
		}
	}
	return 0, false
}

// ReadCSV parses a table from CSV with a header row, inferring a kind for
// each column: a column is Time if every non-empty cell parses as a known
// timestamp layout, Numeric if every non-empty cell parses as a float, and
// Categorical otherwise. Empty cells become missing values.
//
// Errors locate the offending cell: malformed records report the 1-based data
// row (the first row after the header is row 1) and, when known, the column
// name — so a bad cell in a 100k-row file points straight at its row instead
// of failing opaquely.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataframe: CSV for table %q has no header", name)
	}
	if err != nil {
		return nil, fmt.Errorf("dataframe: reading CSV header for table %q: %w", name, err)
	}
	header, err = normalizeHeader(name, header)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, rowError(name, header, len(rows)+1, err)
		}
		rows = append(rows, rec)
	}
	cols := make([]Column, 0, len(header))
	raw := make([]string, len(rows))
	for j, colName := range header {
		for i, rec := range rows {
			if j < len(rec) {
				raw[i] = strings.TrimSpace(rec[j])
			} else {
				raw[i] = ""
			}
		}
		col, err := inferColumn(name, colName, raw)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return NewTable(name, cols...)
}

// rowError wraps a CSV record error with the 1-based data row number and —
// when the parser pinpointed a field — the offending column's name.
func rowError(table string, header []string, row int, err error) error {
	var pe *csv.ParseError
	if errors.As(err, &pe) && pe.Column > 0 {
		// pe.Column is a 1-based byte offset within the line; map it to a
		// column name only when the parser reports a field-level error that
		// carries a usable index. encoding/csv reports byte columns, so the
		// best name hint comes from the field count of wrong-length records.
		if errors.Is(pe.Err, csv.ErrFieldCount) {
			return fmt.Errorf("dataframe: CSV for table %q: row %d: record has wrong number of fields (header has %d columns): %w",
				table, row, len(header), err)
		}
	}
	return fmt.Errorf("dataframe: CSV for table %q: row %d: %w", table, row, err)
}

// normalizeHeader makes header names usable as column identifiers: empty
// cells become "colN". Duplicate names are rejected — two columns with the
// same name would be indistinguishable to join specs and silently shadow
// each other in every by-name lookup, so the ambiguity must surface at
// ingestion, not deep inside a join.
func normalizeHeader(table string, raw []string) ([]string, error) {
	out := make([]string, len(raw))
	seen := make(map[string]int, len(raw))
	for j, name := range raw {
		name = strings.TrimSpace(name)
		if name == "" {
			name = fmt.Sprintf("col%d", j+1)
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("dataframe: CSV for table %q has duplicate column name %q (columns %d and %d)", table, name, prev+1, j+1)
		}
		seen[name] = j
		out[j] = name
	}
	return out, nil
}

// inferColumn builds a column of the most specific kind that fits raw.
// Numeric cells holding ±Inf are rejected: Inf parses as a valid float but
// would poison join keys, aggregation means, and model features, so it is
// surfaced as an ingestion error. A literal NaN cell needs no rejection —
// numeric columns represent missing values as NaN, so it simply reads back
// as missing.
func inferColumn(table, name string, raw []string) (Column, error) {
	allTime, allNum, any := true, true, false
	for _, s := range raw {
		if s == "" {
			continue
		}
		any = true
		if allTime {
			if _, ok := parseTime(s); !ok {
				allTime = false
			}
		}
		if allNum {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				allNum = false
			}
		}
		if !allTime && !allNum {
			break
		}
	}
	switch {
	case any && allTime:
		unix := make([]int64, len(raw))
		for i, s := range raw {
			if s == "" {
				unix[i] = MissingTime
				continue
			}
			ts, _ := parseTime(s)
			unix[i] = ts
		}
		return NewTime(name, unix), nil
	case any && allNum:
		vals := make([]float64, len(raw))
		for i, s := range raw {
			if s == "" {
				vals[i] = math.NaN()
				continue
			}
			v, _ := strconv.ParseFloat(s, 64)
			if math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataframe: CSV for table %q: row %d, column %q: non-finite value %q", table, i+1, name, s)
			}
			vals[i] = v
		}
		return NewNumeric(name, vals), nil
	default:
		vals := make([]string, len(raw))
		copy(vals, raw)
		return NewCategorical(name, vals), nil
	}
}

// ReadCSVFile reads a table from a CSV file; the table is named after the
// file's base name without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return ReadCSV(base, f)
}

// WriteCSV writes the table as CSV with a header row. Missing values are
// written as empty cells.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.cols {
			rec[j] = c.StringAt(i)
		}
		// encoding/csv writes a record holding a single empty field as a
		// blank line, which readers skip; quote it explicitly so the row
		// survives a round trip.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return err
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the given path as CSV. The write is
// atomic: content lands in a temporary file that is synced and renamed into
// place, so a crash mid-write never leaves a truncated CSV under path.
func (t *Table) WriteCSVFile(path string) error {
	return atomicio.WriteFile(path, t.WriteCSV)
}
