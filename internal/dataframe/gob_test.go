package dataframe

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

// gobFixture builds a table exercising all three column kinds with missing
// values and an awkward float population.
func gobFixture() *Table {
	return MustNewTable("fixture",
		NewNumeric("x", []float64{1.5, math.NaN(), -0.0, math.MaxFloat64, 3e-308}),
		NewCategorical("c", []string{"a", "", "b", "a", "c"}),
		NewTime("ts", []int64{0, MissingTime, 1700000000, -5, 42}),
	)
}

func TestTableGobRoundTrip(t *testing.T) {
	orig := gobFixture()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.NumCols() != orig.NumCols() || back.NumRows() != orig.NumRows() {
		t.Fatalf("shape mismatch: %s vs %s", back.String(), orig.String())
	}
	if orig.Digest() != back.Digest() {
		t.Fatalf("digest changed across round trip: %x vs %x", orig.Digest(), back.Digest())
	}
	// Bit-level check on the numeric column (NaN and -0.0 must survive).
	ox := orig.Column("x").(*NumericColumn).Values
	bx := back.Column("x").(*NumericColumn).Values
	for i := range ox {
		if math.Float64bits(ox[i]) != math.Float64bits(bx[i]) {
			t.Fatalf("x[%d]: bits %x vs %x", i, math.Float64bits(ox[i]), math.Float64bits(bx[i]))
		}
	}
	// Decoded columns must not share storage with the original.
	bx[0] = 99
	if ox[0] == 99 {
		t.Fatal("decoded table shares storage with the original")
	}
	// By-name lookup must be rebuilt.
	if back.Column("ts") == nil || back.Column("c") == nil {
		t.Fatal("column index not rebuilt after decode")
	}
}

// A table embedded in a larger gob-encoded struct (the checkpoint snapshot
// shape) must round-trip through the pointer codec too.
func TestTableGobInsideStruct(t *testing.T) {
	type snapshot struct {
		Accum *Table
		Note  string
	}
	in := snapshot{Accum: gobFixture(), Note: "stage"}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out snapshot
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accum == nil || out.Accum.Digest() != in.Accum.Digest() {
		t.Fatal("embedded table did not round-trip")
	}
	if out.Note != "stage" {
		t.Fatalf("sibling field lost: %q", out.Note)
	}
}

func TestTableDigestSensitivity(t *testing.T) {
	a := gobFixture()
	if a.Digest() != gobFixture().Digest() {
		t.Fatal("digest not deterministic")
	}
	b := gobFixture()
	b.Column("x").(*NumericColumn).Values[0] = 1.5000000001
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to a cell change")
	}
	c := gobFixture()
	c.SetName("other")
	if a.Digest() == c.Digest() {
		t.Fatal("digest blind to the table name")
	}
}

// Corrupt gob payloads must error, never panic or half-populate.
func TestTableGobDecodeCorrupt(t *testing.T) {
	orig := gobFixture()
	raw, err := orig.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(raw); cut += len(raw)/7 + 1 {
		var back Table
		if err := back.GobDecode(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
