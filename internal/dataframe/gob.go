package dataframe

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
)

// Gob support: Table serializes through a fully exported wire form so the
// checkpoint log can snapshot pipeline state with encoding/gob without
// reaching into the table's unexported fields. The round trip is exact —
// float64 bits (including NaN payloads), dictionary order, and column order
// are all preserved — so a table restored from a checkpoint is
// value-identical to the one snapshotted.

// columnWire is the gob form of one column; exactly one payload field is
// populated according to Kind.
type columnWire struct {
	Kind   int
	Name   string
	Floats []float64
	Codes  []int
	Dict   []string
	Unix   []int64
}

// tableWire is the gob form of a Table.
type tableWire struct {
	Name string
	Cols []columnWire
}

// GobEncode implements gob.GobEncoder.
func (t *Table) GobEncode() ([]byte, error) {
	w := tableWire{Name: t.name, Cols: make([]columnWire, 0, len(t.cols))}
	for _, c := range t.cols {
		cw := columnWire{Kind: int(c.Kind()), Name: c.Name()}
		switch col := c.(type) {
		case *NumericColumn:
			cw.Floats = col.Values
		case *CategoricalColumn:
			cw.Codes = col.Codes
			cw.Dict = col.Dict
		case *TimeColumn:
			cw.Unix = col.Unix
		default:
			return nil, fmt.Errorf("dataframe: cannot gob-encode column %q of type %T", c.Name(), c)
		}
		w.Cols = append(w.Cols, cw)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. Decoded columns are fresh objects
// (no storage is shared with any other table); structural invariants
// (duplicate names, ragged lengths) surface as errors, never panics, so a
// corrupted checkpoint shard fails loudly.
func (t *Table) GobDecode(data []byte) error {
	var w tableWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	out := &Table{name: w.Name, byName: make(map[string]int, len(w.Cols))}
	for _, cw := range w.Cols {
		var c Column
		switch Kind(cw.Kind) {
		case Numeric:
			c = NewNumeric(cw.Name, cw.Floats)
		case Categorical:
			c = NewCategoricalCodes(cw.Name, cw.Codes, cw.Dict)
		case Time:
			c = NewTime(cw.Name, cw.Unix)
		default:
			return fmt.Errorf("dataframe: gob-decoding table %q: unknown column kind %d", w.Name, cw.Kind)
		}
		if err := out.AddColumn(c); err != nil {
			return fmt.Errorf("dataframe: gob-decoding table %q: %w", w.Name, err)
		}
	}
	*t = *out
	return nil
}

// Digest returns a 64-bit FNV-1a fingerprint over the table's full contents:
// name, column order, names, kinds, and every cell's raw bit pattern. Two
// tables with equal digests are value-identical for checkpoint purposes; the
// resume path uses this to refuse checkpoints taken against different inputs.
func (t *Table) Digest() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	h.Write([]byte(t.name))
	writeU64(uint64(len(t.cols)))
	for _, c := range t.cols {
		h.Write([]byte{0x1f})
		h.Write([]byte(c.Name()))
		writeU64(uint64(c.Kind()))
		switch col := c.(type) {
		case *NumericColumn:
			writeU64(uint64(len(col.Values)))
			for _, v := range col.Values {
				writeU64(math.Float64bits(v))
			}
		case *CategoricalColumn:
			writeU64(uint64(len(col.Codes)))
			for _, code := range col.Codes {
				writeU64(uint64(int64(code)))
			}
			writeU64(uint64(len(col.Dict)))
			for _, s := range col.Dict {
				h.Write([]byte(s))
				h.Write([]byte{0x1f})
			}
		case *TimeColumn:
			writeU64(uint64(len(col.Unix)))
			for _, v := range col.Unix {
				writeU64(uint64(v))
			}
		}
	}
	return h.Sum64()
}
