package dataframe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumericColumnBasics(t *testing.T) {
	c := NewNumeric("x", []float64{1, math.NaN(), 3})
	if c.Name() != "x" {
		t.Fatalf("Name() = %q, want x", c.Name())
	}
	if c.Kind() != Numeric {
		t.Fatalf("Kind() = %v, want Numeric", c.Kind())
	}
	if c.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", c.Len())
	}
	if !c.IsMissing(1) || c.IsMissing(0) {
		t.Fatal("IsMissing misreports NaN entries")
	}
	if c.MissingCount() != 1 {
		t.Fatalf("MissingCount() = %d, want 1", c.MissingCount())
	}
	if got := c.StringAt(1); got != "" {
		t.Fatalf("StringAt(missing) = %q, want empty", got)
	}
	if got := c.StringAt(2); got != "3" {
		t.Fatalf("StringAt(2) = %q, want 3", got)
	}
}

func TestNumericGather(t *testing.T) {
	c := NewNumeric("x", []float64{10, 20, 30})
	g := c.Gather([]int{2, -1, 0, 0}).(*NumericColumn)
	want := []float64{30, math.NaN(), 10, 10}
	for i, w := range want {
		got := g.Values[i]
		if math.IsNaN(w) != math.IsNaN(got) || (!math.IsNaN(w) && got != w) {
			t.Fatalf("gather[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestCategoricalColumn(t *testing.T) {
	c := NewCategorical("city", []string{"nyc", "", "boston", "nyc"})
	if c.Cardinality() != 2 {
		t.Fatalf("Cardinality() = %d, want 2", c.Cardinality())
	}
	if !c.IsMissing(1) {
		t.Fatal("empty string should be missing")
	}
	if v, ok := c.Value(3); !ok || v != "nyc" {
		t.Fatalf("Value(3) = %q,%v want nyc,true", v, ok)
	}
	if c.Codes[0] != c.Codes[3] {
		t.Fatal("equal strings should share a code")
	}
	g := c.Gather([]int{-1, 2}).(*CategoricalColumn)
	if g.Codes[0] != -1 || g.StringAt(1) != "boston" {
		t.Fatalf("gather = %v / %q", g.Codes, g.StringAt(1))
	}
}

func TestTimeColumn(t *testing.T) {
	c := NewTime("ts", []int64{0, MissingTime, 86400})
	if c.MissingCount() != 1 {
		t.Fatalf("MissingCount() = %d, want 1", c.MissingCount())
	}
	if got := c.StringAt(0); got != "1970-01-01T00:00:00Z" {
		t.Fatalf("StringAt(0) = %q", got)
	}
	if got := c.StringAt(1); got != "" {
		t.Fatalf("StringAt(missing) = %q, want empty", got)
	}
}

func TestWithNameSharesStorage(t *testing.T) {
	c := NewNumeric("a", []float64{1, 2})
	r := c.WithName("b").(*NumericColumn)
	r.Values[0] = 99
	if c.Values[0] != 99 {
		t.Fatal("WithName should share backing storage")
	}
	if c.Name() != "a" || r.Name() != "b" {
		t.Fatalf("names = %q, %q", c.Name(), r.Name())
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewCategorical("c", []string{"a", "b"})
	cl := c.Clone().(*CategoricalColumn)
	cl.Codes[0] = -1
	if c.Codes[0] == -1 {
		t.Fatal("Clone should not share codes")
	}
}

// Property: Gather with identity indices reproduces the column exactly.
func TestGatherIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		c := NewNumeric("v", vals)
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		g := c.Gather(idx).(*NumericColumn)
		for i := range vals {
			a, b := vals[i], g.Values[i]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
