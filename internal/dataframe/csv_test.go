package dataframe

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVInference(t *testing.T) {
	in := "date,city,amount\n2020-01-02,nyc,1.5\n2020-01-03,,\n,boston,2\n"
	tab, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("date").Kind() != Time {
		t.Fatalf("date kind = %v, want Time", tab.Column("date").Kind())
	}
	if tab.Column("city").Kind() != Categorical {
		t.Fatalf("city kind = %v", tab.Column("city").Kind())
	}
	if tab.Column("amount").Kind() != Numeric {
		t.Fatalf("amount kind = %v", tab.Column("amount").Kind())
	}
	if !tab.Column("date").IsMissing(2) || !tab.Column("city").IsMissing(1) || !tab.Column("amount").IsMissing(1) {
		t.Fatal("empty cells should be missing")
	}
	if got := tab.Column("amount").(*NumericColumn).Values[0]; got != 1.5 {
		t.Fatalf("amount[0] = %v", got)
	}
}

func TestReadCSVMixedFallsBackToCategorical(t *testing.T) {
	in := "v\n1\nx\n"
	tab, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("v").Kind() != Categorical {
		t.Fatalf("mixed column kind = %v, want Categorical", tab.Column("v").Kind())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := MustNewTable("rt",
		NewTime("ts", []int64{0, MissingTime}),
		NewCategorical("k", []string{"a", ""}),
		NewNumeric("v", []float64{1.25, math.NaN()}),
	)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || back.NumCols() != 3 {
		t.Fatalf("round-trip shape = %dx%d", back.NumRows(), back.NumCols())
	}
	if got := back.Column("v").(*NumericColumn).Values[0]; got != 1.25 {
		t.Fatalf("v[0] = %v", got)
	}
	if !back.Column("v").IsMissing(1) || !back.Column("k").IsMissing(1) || !back.Column("ts").IsMissing(1) {
		t.Fatal("missing cells lost in round trip")
	}
	if got := back.Column("ts").(*TimeColumn).Unix[0]; got != 0 {
		t.Fatalf("ts[0] = %v", got)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.csv")
	tab := MustNewTable("sample", NewNumeric("x", []float64{3, 4}))
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "sample" {
		t.Fatalf("table name = %q, want sample", back.Name())
	}
	if got := back.Column("x").(*NumericColumn).Values[1]; got != 4 {
		t.Fatalf("x[1] = %v", got)
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV("e", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV should error")
	}
}

func TestReadCSVQuotedFields(t *testing.T) {
	in := "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n"
	tab, err := ReadCSV("q", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Column("name").StringAt(0); got != "Smith, John" {
		t.Fatalf("quoted field = %q", got)
	}
	if got := tab.Column("notes").StringAt(0); got != `said "hi"` {
		t.Fatalf("escaped quotes = %q", got)
	}
}

func TestReadCSVAllEmptyColumn(t *testing.T) {
	in := "a,b\n1,\n2,\n"
	tab, err := ReadCSV("e", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// A column with no values at all defaults to categorical, all missing.
	c := tab.Column("b")
	if c.Kind() != Categorical || c.MissingCount() != 2 {
		t.Fatalf("empty column kind=%v missing=%d", c.Kind(), c.MissingCount())
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	// encoding/csv rejects ragged records; we surface that as an error.
	in := "a,b\n1\n"
	if _, err := ReadCSV("r", strings.NewReader(in)); err == nil {
		t.Fatal("ragged CSV should error")
	}
}

func TestCSVNumericPrecisionRoundTrip(t *testing.T) {
	vals := []float64{math.Pi, 1e-300, 1e300, -0.1, 12345678901234.5}
	tab := MustNewTable("p", NewNumeric("v", vals))
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("p", &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Column("v").(*NumericColumn).Values
	for i, w := range vals {
		if got[i] != w {
			t.Fatalf("v[%d] = %v, want %v (precision lost)", i, got[i], w)
		}
	}
}

func TestReadCSVRejectsDuplicateHeader(t *testing.T) {
	for _, in := range []string{
		"a,a\n1,2\n",
		"a, a \n1,2\n", // duplicate after trimming
		"col2,\n1,2\n", // empty header's generated name collides
	} {
		if _, err := ReadCSV("t", strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted a duplicate column name", in)
		} else if !strings.Contains(err.Error(), "duplicate column name") {
			t.Errorf("ReadCSV(%q) error = %v, want duplicate column name", in, err)
		}
	}
}

func TestReadCSVRejectsInfinity(t *testing.T) {
	for _, in := range []string{
		"v\n1\nInf\n",
		"v\n-Inf\n2\n",
		"v\n+infinity\n",
	} {
		if _, err := ReadCSV("t", strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted a non-finite numeric cell", in)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("ReadCSV(%q) error = %v, want non-finite", in, err)
		}
	}
}

func TestReadCSVNaNCellReadsAsMissing(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader("v\nNaN\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Column("v").IsMissing(0) || tab.Column("v").IsMissing(1) {
		t.Fatal("literal NaN cell should read back as missing")
	}
}

// A bad cell deep in a large file must be located by 1-based data row and
// column name.
func TestReadCSVErrorLocatesRowAndColumn(t *testing.T) {
	var b strings.Builder
	b.WriteString("id,price\n")
	for i := 1; i <= 500; i++ {
		if i == 457 {
			b.WriteString("457,Inf\n")
			continue
		}
		fmt.Fprintf(&b, "%d,%d.5\n", i, i)
	}
	_, err := ReadCSV("big", strings.NewReader(b.String()))
	if err == nil {
		t.Fatal("accepted a non-finite cell")
	}
	if !strings.Contains(err.Error(), "row 457") || !strings.Contains(err.Error(), `"price"`) {
		t.Fatalf("error does not locate the cell: %v", err)
	}
}

// A record with the wrong field count must be located by data row number.
func TestReadCSVErrorLocatesRaggedRow(t *testing.T) {
	in := "a,b\n1,2\n3,4\n5\n7,8\n"
	_, err := ReadCSV("t", strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted a ragged record")
	}
	if !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("error does not name the data row: %v", err)
	}
}

// WriteCSVFile must be atomic: the destination only ever holds a complete
// CSV, and no temp file survives a successful write.
func TestWriteCSVFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	tab := MustNewTable("t", NewNumeric("v", []float64{1, 2, 3}))
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.csv" {
		t.Fatalf("unexpected artifacts in dir: %v", entries)
	}
	// Overwrite keeps the path readable at every point; a second write must
	// fully replace the first.
	tab2 := MustNewTable("t", NewNumeric("v", []float64{9}))
	if err := tab2.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back2.NumRows() != 1 {
		t.Fatalf("rows after overwrite = %d", back2.NumRows())
	}
}
