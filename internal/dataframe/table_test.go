package dataframe

import (
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("trips",
		NewTime("date", []int64{0, 86400, 172800}),
		NewCategorical("zone", []string{"a", "b", "a"}),
		NewNumeric("count", []float64{5, 7, 9}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := sampleTable(t)
	if tab.NumRows() != 3 || tab.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 3x3", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("zone") == nil || tab.Column("nope") != nil {
		t.Fatal("Column lookup broken")
	}
	if !tab.HasColumn("count") {
		t.Fatal("HasColumn(count) = false")
	}
	names := tab.ColumnNames()
	if strings.Join(names, ",") != "date,zone,count" {
		t.Fatalf("names = %v", names)
	}
}

func TestAddColumnErrors(t *testing.T) {
	tab := sampleTable(t)
	if err := tab.AddColumn(NewNumeric("count", []float64{1, 2, 3})); err == nil {
		t.Fatal("duplicate column name should error")
	}
	if err := tab.AddColumn(NewNumeric("short", []float64{1})); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestDropColumn(t *testing.T) {
	tab := sampleTable(t)
	tab.DropColumn("zone")
	if tab.NumCols() != 2 || tab.HasColumn("zone") {
		t.Fatal("DropColumn failed")
	}
	// Index map must stay consistent after drop.
	if tab.Column("count").(*NumericColumn).Values[0] != 5 {
		t.Fatal("column index remap broken")
	}
	tab.DropColumn("absent") // no-op
	if tab.NumCols() != 2 {
		t.Fatal("dropping absent column changed the table")
	}
}

func TestProject(t *testing.T) {
	tab := sampleTable(t)
	p, err := tab.Project("count", "date")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.ColumnNames(), ",") != "count,date" {
		t.Fatalf("projected names = %v", p.ColumnNames())
	}
	if _, err := tab.Project("missing"); err == nil {
		t.Fatal("projecting a missing column should error")
	}
}

func TestGatherTable(t *testing.T) {
	tab := sampleTable(t)
	g := tab.Gather([]int{2, 0})
	if g.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", g.NumRows())
	}
	if got := g.Column("count").(*NumericColumn).Values[0]; got != 9 {
		t.Fatalf("gathered count[0] = %v, want 9", got)
	}
}

func TestHead(t *testing.T) {
	tab := sampleTable(t)
	if h := tab.Head(2); h.NumRows() != 2 {
		t.Fatalf("Head(2) rows = %d", h.NumRows())
	}
	if h := tab.Head(99); h.NumRows() != 3 {
		t.Fatalf("Head(99) rows = %d", h.NumRows())
	}
}

func TestRenamePrefixed(t *testing.T) {
	tab := sampleTable(t)
	r := tab.RenamePrefixed("w.", map[string]bool{"date": true})
	if !r.HasColumn("date") || !r.HasColumn("w.zone") || r.HasColumn("zone") {
		t.Fatalf("renamed columns = %v", r.ColumnNames())
	}
}

func TestSortedByTime(t *testing.T) {
	tab := MustNewTable("x",
		NewTime("ts", []int64{86400, MissingTime, 0}),
	)
	idx, err := tab.SortedByTime("ts")
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 2 || idx[1] != 0 || idx[2] != 1 {
		t.Fatalf("sorted idx = %v, want [2 0 1]", idx)
	}
	if _, err := tab.SortedByTime("absent"); err == nil {
		t.Fatal("sorting by absent column should error")
	}
}

func TestStringSchema(t *testing.T) {
	tab := sampleTable(t)
	s := tab.String()
	for _, want := range []string{"trips[", "date:time", "zone:categorical", "count:numeric", "(3 rows)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
