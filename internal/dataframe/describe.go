package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ColumnSummary profiles one column for schema exploration (cmd/arda's
// describe mode and discovery debugging).
type ColumnSummary struct {
	Name    string
	Kind    Kind
	Missing int
	// Distinct counts unique present values (capped at DistinctCap).
	Distinct int
	// Min/Max/Mean/Median describe numeric columns (Min/Max also time
	// columns, as Unix seconds).
	Min, Max, Mean, Median float64
	// Top holds up to three modal values for categorical columns.
	Top []string
}

// DistinctCap bounds distinct-value counting in summaries.
const DistinctCap = 10000

// Describe profiles every column of the table.
func (t *Table) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, t.NumCols())
	for _, c := range t.Columns() {
		s := ColumnSummary{Name: c.Name(), Kind: c.Kind(), Missing: c.MissingCount()}
		switch col := c.(type) {
		case *NumericColumn:
			summarizeNumeric(&s, col.Values)
		case *TimeColumn:
			vals := make([]float64, 0, len(col.Unix))
			for _, v := range col.Unix {
				if v != MissingTime {
					vals = append(vals, float64(v))
				}
			}
			summarizeNumeric(&s, vals)
		case *CategoricalColumn:
			counts := make(map[int]int)
			for _, code := range col.Codes {
				if code >= 0 {
					counts[code]++
				}
			}
			s.Distinct = len(counts)
			type kc struct {
				code, n int
			}
			top := make([]kc, 0, len(counts))
			for code, n := range counts {
				top = append(top, kc{code, n})
			}
			sort.Slice(top, func(a, b int) bool {
				if top[a].n != top[b].n {
					return top[a].n > top[b].n
				}
				return top[a].code < top[b].code
			})
			for i := 0; i < len(top) && i < 3; i++ {
				s.Top = append(s.Top, col.Dict[top[i].code])
			}
		}
		out = append(out, s)
	}
	return out
}

// summarizeNumeric fills the numeric fields of a summary.
func summarizeNumeric(s *ColumnSummary, vals []float64) {
	present := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			present = append(present, v)
		}
	}
	if len(present) == 0 {
		s.Min, s.Max, s.Mean, s.Median = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return
	}
	sort.Float64s(present)
	s.Min = present[0]
	s.Max = present[len(present)-1]
	sum := 0.0
	distinct := 1
	for i, v := range present {
		sum += v
		if i > 0 && v != present[i-1] && distinct < DistinctCap {
			distinct++
		}
	}
	s.Distinct = distinct
	s.Mean = sum / float64(len(present))
	mid := len(present) / 2
	if len(present)%2 == 1 {
		s.Median = present[mid]
	} else {
		s.Median = (present[mid-1] + present[mid]) / 2
	}
}

// FormatDescription renders the summaries as an aligned text block.
func FormatDescription(name string, rows int, summaries []ColumnSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rows, %d columns\n", name, rows, len(summaries))
	for _, s := range summaries {
		fmt.Fprintf(&b, "  %-24s %-11s", s.Name, s.Kind)
		switch s.Kind {
		case Categorical:
			fmt.Fprintf(&b, " distinct=%-6d top=%s", s.Distinct, strings.Join(s.Top, ","))
		case Time:
			if !math.IsNaN(s.Min) {
				fmt.Fprintf(&b, " range=[%s, %s]",
					time.Unix(int64(s.Min), 0).UTC().Format("2006-01-02"),
					time.Unix(int64(s.Max), 0).UTC().Format("2006-01-02"))
			}
		default:
			if !math.IsNaN(s.Mean) {
				fmt.Fprintf(&b, " min=%.4g max=%.4g mean=%.4g median=%.4g",
					s.Min, s.Max, s.Mean, s.Median)
			}
		}
		if s.Missing > 0 {
			fmt.Fprintf(&b, " missing=%d", s.Missing)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
