package dataframe

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a named collection of equal-length columns.
type Table struct {
	name   string
	cols   []Column
	byName map[string]int
}

// NewTable constructs a table from columns, which must all have equal length
// and distinct names.
func NewTable(name string, cols ...Column) (*Table, error) {
	t := &Table{name: name, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustNewTable is NewTable but panics on error; intended for tests and
// generators with statically-known shapes.
func MustNewTable(name string, cols ...Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName changes the table name.
func (t *Table) SetName(name string) { t.name = name }

// NumRows returns the number of rows (0 for an empty table).
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the table's columns in order. The slice is shared; do not
// modify it.
func (t *Table) Columns() []Column { return t.cols }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name()
	}
	return names
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// AddColumn appends a column. It errors if the name is taken or the length
// mismatches existing columns.
func (t *Table) AddColumn(c Column) error {
	if _, ok := t.byName[c.Name()]; ok {
		return fmt.Errorf("dataframe: table %q already has column %q", t.name, c.Name())
	}
	if len(t.cols) > 0 && c.Len() != t.NumRows() {
		return fmt.Errorf("dataframe: column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, t.NumRows())
	}
	t.byName[c.Name()] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// DropColumn removes the named column; it is a no-op if the column is absent.
func (t *Table) DropColumn(name string) {
	i, ok := t.byName[name]
	if !ok {
		return
	}
	t.cols = append(t.cols[:i], t.cols[i+1:]...)
	delete(t.byName, name)
	for j := i; j < len(t.cols); j++ {
		t.byName[t.cols[j].Name()] = j
	}
}

// Project returns a new table containing only the named columns, in the given
// order. It errors if any column is absent.
func (t *Table) Project(names ...string) (*Table, error) {
	out := &Table{name: t.name, byName: make(map[string]int, len(names))}
	for _, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("dataframe: table %q has no column %q", t.name, n)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Gather returns a new table whose row j is this table's row idx[j]; an index
// of -1 produces an all-missing row. Dictionary and name metadata are shared.
func (t *Table) Gather(idx []int) *Table {
	out := &Table{name: t.name, byName: make(map[string]int, len(t.cols))}
	for _, c := range t.cols {
		if err := out.AddColumn(c.Gather(idx)); err != nil {
			// Gather preserves names and lengths, so this cannot happen.
			panic(err)
		}
	}
	return out
}

// Head returns a new table with the first n rows (or all rows if n exceeds
// the row count).
func (t *Table) Head(n int) *Table {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return t.Gather(idx)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{name: t.name, byName: make(map[string]int, len(t.cols))}
	for _, c := range t.cols {
		if err := out.AddColumn(c.Clone()); err != nil {
			panic(err)
		}
	}
	return out
}

// RenamePrefixed returns a copy of the table in which every column except
// those in keep is renamed to prefix+name. Used when joining to avoid column
// collisions between tables.
func (t *Table) RenamePrefixed(prefix string, keep map[string]bool) *Table {
	out := &Table{name: t.name, byName: make(map[string]int, len(t.cols))}
	for _, c := range t.cols {
		nc := c
		if !keep[c.Name()] {
			nc = c.WithName(prefix + c.Name())
		}
		if err := out.AddColumn(nc); err != nil {
			panic(err)
		}
	}
	return out
}

// MissingCells returns the total number of missing entries across all columns.
func (t *Table) MissingCells() int {
	n := 0
	for _, c := range t.cols {
		n += c.MissingCount()
	}
	return n
}

// String renders a compact schema description, e.g.
// "taxi[date:time trips:numeric zone:categorical] (120 rows)".
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[", t.name)
	for i, c := range t.cols {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%s", c.Name(), c.Kind())
	}
	fmt.Fprintf(&b, "] (%d rows)", t.NumRows())
	return b.String()
}

// SortedByTime returns row indices of the table ordered by the named time or
// numeric column ascending, with missing entries last. It errors if the
// column is absent or categorical.
func (t *Table) SortedByTime(col string) ([]int, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("dataframe: table %q has no column %q", t.name, col)
	}
	key, err := NumericKey(c)
	if err != nil {
		return nil, err
	}
	idx := make([]int, c.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, ok1 := key(idx[a])
		kb, ok2 := key(idx[b])
		if ok1 != ok2 {
			return ok1 // present before missing
		}
		return ka < kb
	})
	return idx, nil
}

// NumericKey returns an accessor mapping row index to a float64 ordering key
// for a numeric or time column, with a presence flag. Categorical columns
// are rejected.
func NumericKey(c Column) (func(i int) (float64, bool), error) {
	switch col := c.(type) {
	case *NumericColumn:
		return func(i int) (float64, bool) {
			if col.IsMissing(i) {
				return 0, false
			}
			return col.Values[i], true
		}, nil
	case *TimeColumn:
		return func(i int) (float64, bool) {
			if col.IsMissing(i) {
				return 0, false
			}
			return float64(col.Unix[i]), true
		}, nil
	default:
		return nil, fmt.Errorf("dataframe: column %q (%s) has no numeric ordering", c.Name(), c.Kind())
	}
}
