package dataframe

import (
	"fmt"
	"math"
	"testing"
)

func TestBinarize(t *testing.T) {
	c := NewCategorical("city", []string{"a", "b", "a", "", "c"})
	cols := Binarize(c)
	if len(cols) != 3 {
		t.Fatalf("got %d indicator columns, want 3", len(cols))
	}
	byName := map[string]*NumericColumn{}
	for _, col := range cols {
		byName[col.Name()] = col
	}
	a := byName["city=a"]
	if a == nil {
		t.Fatalf("missing city=a; have %v", names(cols))
	}
	if a.Values[0] != 1 || a.Values[1] != 0 || a.Values[2] != 1 {
		t.Fatalf("city=a = %v", a.Values)
	}
	// Missing row is 0 in all indicators.
	for _, col := range cols {
		if col.Values[3] != 0 {
			t.Fatalf("missing row set in %s", col.Name())
		}
	}
}

func TestBinarizeCardinalityCap(t *testing.T) {
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%03d", i%100)
	}
	cols := Binarize(NewCategorical("k", vals))
	if len(cols) > MaxOneHotCardinality {
		t.Fatalf("got %d indicators, cap is %d", len(cols), MaxOneHotCardinality)
	}
	hasOther := false
	for _, c := range cols {
		if c.Name() == "k=<other>" {
			hasOther = true
		}
	}
	if !hasOther {
		t.Fatal("expected pooled <other> indicator")
	}
	// Every present row contributes to exactly one indicator.
	for i := range vals {
		sum := 0.0
		for _, c := range cols {
			sum += c.Values[i]
		}
		if sum != 1 {
			t.Fatalf("row %d indicator sum = %v, want 1", i, sum)
		}
	}
}

func TestToNumericView(t *testing.T) {
	tab := MustNewTable("t",
		NewTime("ts", []int64{0, 3600}),
		NewCategorical("k", []string{"x", "y"}),
		NewNumeric("v", []float64{1, math.NaN()}),
		NewNumeric("target", []float64{0, 1}),
	)
	view := tab.ToNumericView("target")
	if view.Rows != 2 {
		t.Fatalf("rows = %d", view.Rows)
	}
	// ts + k=x + k=y + v = 4 columns.
	if view.Cols != 4 {
		t.Fatalf("cols = %d (%v)", view.Cols, view.Names)
	}
	for _, n := range view.Names {
		if n == "target" {
			t.Fatal("excluded column appears in view")
		}
	}
	if got := view.At(1, 0); got != 3600 {
		t.Fatalf("time feature = %v", got)
	}
	if !math.IsNaN(view.At(1, 3)) {
		t.Fatalf("NaN should pass through, got %v", view.At(1, 3))
	}
}

func TestTargetVector(t *testing.T) {
	tab := MustNewTable("t",
		NewCategorical("y", []string{"no", "yes", "no"}),
		NewNumeric("r", []float64{1.5, 2.5, 3.5}),
	)
	y, err := tab.TargetVector("y")
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 0 || y[1] != 1 || y[2] != 0 {
		t.Fatalf("categorical target = %v", y)
	}
	r, err := tab.TargetVector("r")
	if err != nil {
		t.Fatal(err)
	}
	if r[2] != 3.5 {
		t.Fatalf("numeric target = %v", r)
	}
	if _, err := tab.TargetVector("absent"); err == nil {
		t.Fatal("absent target should error")
	}
}

func TestSelectAndAppendView(t *testing.T) {
	tab := MustNewTable("t",
		NewNumeric("a", []float64{1, 2}),
		NewNumeric("b", []float64{3, 4}),
		NewNumeric("c", []float64{5, 6}),
	)
	v := tab.ToNumericView()
	sel := v.SelectView([]int{2, 0})
	if sel.Cols != 2 || sel.Names[0] != "c" || sel.At(1, 1) != 2 {
		t.Fatalf("SelectView wrong: %+v", sel)
	}
	app := AppendView(sel, v)
	if app.Cols != 5 || app.At(0, 2) != 1 || app.At(0, 0) != 5 {
		t.Fatalf("AppendView wrong: cols=%d", app.Cols)
	}
	g := v.GatherRows([]int{1})
	if g.Rows != 1 || g.At(0, 1) != 4 {
		t.Fatalf("GatherRows wrong")
	}
}

func names(cols []*NumericColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name()
	}
	return out
}
