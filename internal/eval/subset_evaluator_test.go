package eval

import (
	"math"
	"sync"
	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

// TestSubsetEvaluatorMatchesHoldoutSubsetScore: ScoreAt over base-column
// positions must return exactly what HoldoutSubsetScore returns for the
// corresponding absolute columns — the gather-of-a-gather contract the RIFS
// threshold sweep relies on.
func TestSubsetEvaluatorMatchesHoldoutSubsetScore(t *testing.T) {
	ds := subsetFixture(160, 8, 21)
	sp := TrainTestSplit(ds, 0.25, 9)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 8, MaxDepth: 4, Seed: 3})
	}
	base := []int{0, 1, 3, 4, 7}
	ev := NewSubsetEvaluator(ds, sp, fit, base)
	cases := []struct {
		pos  []int
		cols []int
	}{
		{[]int{0, 1, 2, 3, 4}, base},
		{[]int{0, 2, 4}, []int{0, 3, 7}},
		{[]int{1}, []int{1}},
		{[]int{3, 4}, []int{4, 7}},
	}
	for _, tc := range cases {
		want := HoldoutSubsetScore(ds, sp, fit, tc.cols)
		got := ev.ScoreAt(tc.pos)
		if got != want {
			t.Fatalf("pos %v (cols %v): evaluator score %v != direct subset score %v",
				tc.pos, tc.cols, got, want)
		}
		// Re-score to prove pooled scratch reuse does not leak state.
		if again := ev.ScoreAt(tc.pos); again != want {
			t.Fatalf("pos %v: score drifted on reuse: %v != %v", tc.pos, again, want)
		}
	}
}

// TestSubsetEvaluatorEmptySubset: an empty position list scores -Inf, the
// sweep's sentinel for "nothing selected".
func TestSubsetEvaluatorEmptySubset(t *testing.T) {
	ds := subsetFixture(80, 4, 3)
	sp := TrainTestSplit(ds, 0.25, 7)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 4, MaxDepth: 3, Seed: 1})
	}
	ev := NewSubsetEvaluator(ds, sp, fit, []int{0, 1})
	if got := ev.ScoreAt(nil); !math.IsInf(got, -1) {
		t.Fatalf("empty subset score %v, want -Inf", got)
	}
}

// TestSubsetEvaluatorConcurrent: the sweep scores distinct subsets
// concurrently; every concurrent score must equal its sequential value.
func TestSubsetEvaluatorConcurrent(t *testing.T) {
	ds := subsetFixture(150, 6, 17)
	sp := TrainTestSplit(ds, 0.25, 5)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 6, MaxDepth: 4, Seed: 2})
	}
	base := []int{0, 1, 2, 3, 5}
	ev := NewSubsetEvaluator(ds, sp, fit, base)
	subsets := [][]int{{0, 1, 2, 3, 4}, {0, 1, 2}, {1, 3}, {4}, {0, 4}, {2}}
	want := make([]float64, len(subsets))
	for i, pos := range subsets {
		want[i] = ev.ScoreAt(pos)
	}
	got := make([]float64, len(subsets))
	var wg sync.WaitGroup
	for i, pos := range subsets {
		wg.Add(1)
		go func(i int, pos []int) {
			defer wg.Done()
			got[i] = ev.ScoreAt(pos)
		}(i, pos)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subset %v: concurrent score %v != sequential %v", subsets[i], got[i], want[i])
		}
	}
}

// TestScoreForestWaveMatchesScoreAt: the cross-forest wave fast path must
// return exactly ScoreAt's score for every subset — the wave only changes
// where the presort work happens and how trees are scheduled, never the
// fitted forests or the holdout evaluation — and must hold at any worker
// count. Empty subsets score -Inf without fitting.
func TestScoreForestWaveMatchesScoreAt(t *testing.T) {
	cfg := ml.ForestConfig{NTrees: 9, MaxDepth: 5, Seed: 13}
	ds := subsetFixture(170, 9, 31)
	sp := TrainTestSplit(ds, 0.25, 3)
	fit := func(d *ml.Dataset) ml.Model { return ml.FitForest(d, cfg) }
	base := []int{0, 1, 2, 4, 5, 7, 8}
	posSets := [][]int{{0, 1, 2, 3, 4, 5, 6}, {0, 2, 4, 6}, {1}, nil, {3, 5}}

	ev := NewSubsetEvaluator(ds, sp, fit, base)
	want := make([]float64, len(posSets))
	for i, pos := range posSets {
		if len(pos) == 0 {
			want[i] = math.Inf(-1)
			continue
		}
		want[i] = ev.ScoreAt(pos)
	}
	for _, workers := range []int{1, 8} {
		ev := NewSubsetEvaluator(ds, sp, fit, base)
		scores, trees := ev.ScoreForestWave(posSets, cfg, workers)
		if wantTrees := cfg.NTrees * 4; trees != wantTrees {
			t.Fatalf("workers=%d: scheduled %d trees, want %d (4 non-empty subsets)", workers, trees, wantTrees)
		}
		for i := range want {
			if scores[i] != want[i] && !(math.IsInf(scores[i], -1) && math.IsInf(want[i], -1)) {
				t.Fatalf("workers=%d subset %v: wave score %v != ScoreAt %v",
					workers, posSets[i], scores[i], want[i])
			}
		}
		st := ev.SplitCacheStats()
		if st.Misses != int64(len(base)) {
			t.Fatalf("workers=%d: cache misses = %d, want %d (one cold build per base column)",
				workers, st.Misses, len(base))
		}
	}
}
