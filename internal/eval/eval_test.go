package eval

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]float64{0, 1, 1}, []float64{0, 1, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect predictions: F1 = 1 for both classes.
	if got := MacroF1([]float64{0, 1, 0, 1}, []float64{0, 1, 0, 1}, 2); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
	// All wrong: F1 = 0.
	if got := MacroF1([]float64{1, 0}, []float64{0, 1}, 2); got != 0 {
		t.Fatalf("all-wrong F1 = %v", got)
	}
}

func TestRegressionMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	if got := MAE(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("R2 of perfect fit = %v", got)
	}
	mean := []float64{3, 3, 3}
	if got := R2(mean, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("R2 of mean predictor = %v", got)
	}
}

func TestScoreClipsNegativeR2(t *testing.T) {
	bad := []float64{100, -100, 100}
	truth := []float64{1, 2, 3}
	if got := Score(ml.Regression, 0, bad, truth); got != 0 {
		t.Fatalf("negative R² should clip to 0, got %v", got)
	}
}

func classDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = float64(i % 3)
		x[i] = rng.NormFloat64()
	}
	ds, _ := ml.NewDataset(x, n, 1, y, ml.Classification, 3)
	return ds
}

func TestTrainTestSplitStratified(t *testing.T) {
	ds := classDataset(300, 1)
	sp := TrainTestSplit(ds, 0.25, 2)
	if len(sp.Train)+len(sp.Test) != 300 {
		t.Fatalf("split sizes %d + %d != 300", len(sp.Train), len(sp.Test))
	}
	// Each class should appear in the test split proportionally (25 of 100).
	counts := map[int]int{}
	for _, i := range sp.Test {
		counts[ds.Label(i)]++
	}
	for k := 0; k < 3; k++ {
		if counts[k] < 20 || counts[k] > 30 {
			t.Fatalf("class %d test count = %d, want ~25", k, counts[k])
		}
	}
	// No overlap.
	inTest := map[int]bool{}
	for _, i := range sp.Test {
		inTest[i] = true
	}
	for _, i := range sp.Train {
		if inTest[i] {
			t.Fatal("train/test overlap")
		}
	}
}

func TestKFoldCoversAll(t *testing.T) {
	ds := classDataset(90, 3)
	folds := KFold(ds, 5, 4)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, sp := range folds {
		if len(sp.Train)+len(sp.Test) != 90 {
			t.Fatal("fold does not partition the data")
		}
		for _, i := range sp.Test {
			seen[i]++
		}
	}
	for i := 0; i < 90; i++ {
		if seen[i] != 1 {
			t.Fatalf("sample %d appears in %d test folds", i, seen[i])
		}
	}
}

func TestHoldoutScore(t *testing.T) {
	// A strong feature → near-perfect holdout accuracy with a forest.
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = float64(i % 2)
		x[i] = y[i]*4 + 0.1*float64(i%5)
	}
	ds, _ := ml.NewDataset(x, n, 1, y, ml.Classification, 2)
	sp := TrainTestSplit(ds, 0.25, 5)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 10, MaxDepth: 4, Seed: 1})
	}
	if sc := HoldoutScore(ds, sp, fit); sc < 0.95 {
		t.Fatalf("holdout score = %v", sc)
	}
	if e := HoldoutError(ds, sp, fit); e > 0.05 {
		t.Fatalf("holdout error = %v", e)
	}
}

func TestCrossValScore(t *testing.T) {
	ds := classDataset(120, 6)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 5, MaxDepth: 3, Seed: 1})
	}
	sc := CrossValScore(ds, 3, 7, fit)
	// Labels are independent of x, so CV accuracy should hover near 1/3.
	if sc < 0.1 || sc > 0.6 {
		t.Fatalf("chance-level CV score = %v", sc)
	}
}

func TestKFoldRegression(t *testing.T) {
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i)
	}
	ds, _ := ml.NewDataset(x, n, 1, y, ml.Regression, 0)
	folds := KFold(ds, 5, 9)
	total := 0
	for _, sp := range folds {
		total += len(sp.Test)
	}
	if total != n {
		t.Fatalf("regression folds cover %d of %d rows", total, n)
	}
}

func TestTrainTestSplitRegressionFractions(t *testing.T) {
	n := 100
	ds, _ := ml.NewDataset(make([]float64, n), n, 1, make([]float64, n), ml.Regression, 0)
	sp := TrainTestSplit(ds, 0.3, 10)
	if len(sp.Test) != 30 || len(sp.Train) != 70 {
		t.Fatalf("split = %d/%d", len(sp.Train), len(sp.Test))
	}
	// Degenerate fraction falls back to the default 0.25.
	sp = TrainTestSplit(ds, 2.0, 11)
	if len(sp.Test) != 25 {
		t.Fatalf("fallback split test = %d", len(sp.Test))
	}
}
