// Package eval provides model evaluation utilities: classification and
// regression metrics, stratified train/holdout splitting, and k-fold cross
// validation over ml.Dataset.
package eval

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
)

// Accuracy returns the fraction of equal entries in pred and truth.
func Accuracy(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i, p := range pred {
		if int(p) == int(truth[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// MacroF1 returns the unweighted mean per-class F1 score.
func MacroF1(pred, truth []float64, classes int) float64 {
	if classes < 2 || len(pred) == 0 {
		return 0
	}
	tp := make([]float64, classes)
	fp := make([]float64, classes)
	fn := make([]float64, classes)
	for i, p := range pred {
		pk, tk := int(p), int(truth[i])
		if pk == tk {
			tp[pk]++
		} else {
			if pk >= 0 && pk < classes {
				fp[pk]++
			}
			if tk >= 0 && tk < classes {
				fn[tk]++
			}
		}
	}
	sum := 0.0
	for k := 0; k < classes; k++ {
		var f1 float64
		den := 2*tp[k] + fp[k] + fn[k]
		if den > 0 {
			f1 = 2 * tp[k] / den
		}
		sum += f1
	}
	return sum / float64(classes)
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// R2 returns the coefficient of determination.
func R2(pred, truth []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	mean := 0.0
	for _, t := range truth {
		mean += t
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i, p := range pred {
		d := p - truth[i]
		ssRes += d * d
		t := truth[i] - mean
		ssTot += t * t
	}
	if ssTot <= 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Score returns the task's headline score for predictions: accuracy for
// classification, and for regression a bounded "higher is better" score
// 1/(1+MAE-normalized) is unintuitive, so we use R² clipped at 0.
func Score(task ml.Task, classes int, pred, truth []float64) float64 {
	if task == ml.Classification {
		return Accuracy(pred, truth)
	}
	r2 := R2(pred, truth)
	if r2 < 0 {
		return 0
	}
	return r2
}

// Split holds train/holdout sample indices.
type Split struct {
	Train, Test []int
}

// TrainTestSplit returns a random split with the given test fraction,
// stratified by class for classification datasets so every label appears in
// both sides when possible.
func TrainTestSplit(ds *ml.Dataset, testFrac float64, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	if testFrac <= 0 || testFrac >= 1 {
		testFrac = 0.25
	}
	var sp Split
	if ds.Task == ml.Classification {
		byClass := make([][]int, ds.Classes)
		for i := 0; i < ds.N; i++ {
			k := ds.Label(i)
			byClass[k] = append(byClass[k], i)
		}
		for _, idx := range byClass {
			rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
			nTest := int(math.Round(float64(len(idx)) * testFrac))
			if nTest == 0 && len(idx) > 1 {
				nTest = 1
			}
			sp.Test = append(sp.Test, idx[:nTest]...)
			sp.Train = append(sp.Train, idx[nTest:]...)
		}
	} else {
		idx := rng.Perm(ds.N)
		nTest := int(math.Round(float64(ds.N) * testFrac))
		if nTest == 0 && ds.N > 1 {
			nTest = 1
		}
		sp.Test = append(sp.Test, idx[:nTest]...)
		sp.Train = append(sp.Train, idx[nTest:]...)
	}
	sort.Ints(sp.Train)
	sort.Ints(sp.Test)
	return sp
}

// KFold returns k cross-validation splits (stratified for classification).
func KFold(ds *ml.Dataset, k int, seed int64) []Split {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	folds := make([][]int, k)
	assign := func(idx []int) {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for i, v := range idx {
			folds[i%k] = append(folds[i%k], v)
		}
	}
	if ds.Task == ml.Classification {
		byClass := make([][]int, ds.Classes)
		for i := 0; i < ds.N; i++ {
			byClass[ds.Label(i)] = append(byClass[ds.Label(i)], i)
		}
		for _, idx := range byClass {
			assign(idx)
		}
	} else {
		idx := make([]int, ds.N)
		for i := range idx {
			idx[i] = i
		}
		assign(idx)
	}
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		var sp Split
		for g := 0; g < k; g++ {
			if g == f {
				sp.Test = append(sp.Test, folds[g]...)
			} else {
				sp.Train = append(sp.Train, folds[g]...)
			}
		}
		sort.Ints(sp.Train)
		sort.Ints(sp.Test)
		splits[f] = sp
	}
	return splits
}

// Fitter trains a model on a dataset; it is the pluggable estimator
// interface used by feature-selection wrappers and the final ARDA estimate.
type Fitter func(ds *ml.Dataset) ml.Model

// HoldoutScore trains on sp.Train and returns the task score on sp.Test.
func HoldoutScore(ds *ml.Dataset, sp Split, fit Fitter) float64 {
	train := ds.Subset(sp.Train)
	test := ds.Subset(sp.Test)
	m := fit(train)
	pred := ml.PredictAll(m, test)
	return Score(ds.Task, ds.Classes, pred, test.Y)
}

// subsetScratch pools the gather buffers HoldoutSubsetScore fills on every
// call, so repeated subset evaluations (the RIFS threshold sweep scores
// hundreds of feature subsets over the same dataset) stop allocating a fresh
// design matrix each time. Buffers are fully overwritten before use, and the
// fitted model is discarded before the buffers return to the pool, so reuse
// never leaks state between evaluations.
var subsetScratch = sync.Pool{New: func() any { return new(subsetBufs) }}

// subsetBufs is one reusable pair of gather buffers.
type subsetBufs struct {
	x, y []float64
}

// HoldoutSubsetScore is HoldoutScore restricted to the given feature columns,
// without materializing the column subset: train and test matrices are
// gathered straight from ds (through any view indirection) into pooled
// scratch. It returns exactly what
// HoldoutScore(ds.SelectFeatures(cols), sp, fit) would, allocation-light.
func HoldoutSubsetScore(ds *ml.Dataset, sp Split, fit Fitter, cols []int) float64 {
	d := len(cols)
	nTr, nTe := len(sp.Train), len(sp.Test)
	sb := subsetScratch.Get().(*subsetBufs)
	defer subsetScratch.Put(sb)
	if need := (nTr + nTe) * d; cap(sb.x) < need {
		sb.x = make([]float64, need)
	}
	if need := nTr + nTe; cap(sb.y) < need {
		sb.y = make([]float64, need)
	}
	x := sb.x[: (nTr+nTe)*d : (nTr+nTe)*d]
	y := sb.y[: nTr+nTe : nTr+nTe]
	trainX, testX := x[:nTr*d], x[nTr*d:]
	trainY, testY := y[:nTr], y[nTr:]
	ds.GatherSubsetInto(sp.Train, cols, trainX, trainY)
	ds.GatherSubsetInto(sp.Test, cols, testX, testY)
	train := &ml.Dataset{X: trainX, N: nTr, D: d, Y: trainY, Task: ds.Task, Classes: ds.Classes}
	test := &ml.Dataset{X: testX, N: nTe, D: d, Y: testY, Task: ds.Task, Classes: ds.Classes}
	m := fit(train)
	pred := ml.PredictAll(m, test)
	return Score(ds.Task, ds.Classes, pred, testY)
}

// SubsetEvaluator scores many nested feature subsets of one dataset on a
// fixed holdout split. The constructor gathers the base columns once into a
// compact train+test design matrix; ScoreAt then sub-gathers each candidate
// subset from that matrix instead of walking the full dataset's (possibly
// view-indirected) rows again — the win for the RIFS threshold sweep, whose
// tighter-threshold subsets are all contained in the loosest one. Scores
// are bit-identical to HoldoutSubsetScore over the same split: both paths
// gather the same cell values into the same row-major layout before fitting.
type SubsetEvaluator struct {
	task     ml.Task
	classes  int
	fit      Fitter
	nTr, nTe int
	d        int       // number of base columns
	x        []float64 // base design, train rows then test rows, stride d
	y        []float64 // targets, train then test

	// Lazily-built run-level split cache over the compact train matrix;
	// ScoreForestWave shares its presorted columns across every candidate
	// subset in the sweep instead of re-sorting per nested forest.
	cacheOnce sync.Once
	trainDS   *ml.Dataset
	cache     *ml.SplitCache

	// scoreDur, when attached, observes per-subset scoring latency (the
	// whole fit+predict for ScoreAt; the holdout evaluation for wave-fitted
	// forests). Observability only; nil costs one branch per score.
	scoreDur *obs.Histogram
}

// AttachHistogram wires a latency histogram into subsequent scoring calls
// (nil detaches). Attach before handing the evaluator to concurrent scorers.
func (e *SubsetEvaluator) AttachHistogram(h *obs.Histogram) { e.scoreDur = h }

// NewSubsetEvaluator gathers the base feature columns of ds over sp once.
// base must be ascending; candidate subsets passed to ScoreAt address its
// positions.
func NewSubsetEvaluator(ds *ml.Dataset, sp Split, fit Fitter, base []int) *SubsetEvaluator {
	d := len(base)
	nTr, nTe := len(sp.Train), len(sp.Test)
	e := &SubsetEvaluator{
		task:    ds.Task,
		classes: ds.Classes,
		fit:     fit,
		nTr:     nTr,
		nTe:     nTe,
		d:       d,
		x:       make([]float64, (nTr+nTe)*d),
		y:       make([]float64, nTr+nTe),
	}
	ds.GatherSubsetInto(sp.Train, base, e.x[:nTr*d], e.y[:nTr])
	ds.GatherSubsetInto(sp.Test, base, e.x[nTr*d:], e.y[nTr:])
	return e
}

// ScoreAt trains on the train side restricted to the base-column positions
// pos and returns the holdout task score (-Inf for an empty subset). Gathers
// go into the shared pooled scratch, so concurrent calls are safe and
// allocation-light.
func (e *SubsetEvaluator) ScoreAt(pos []int) float64 {
	k := len(pos)
	if k == 0 {
		return math.Inf(-1)
	}
	if e.scoreDur != nil {
		defer e.scoreDur.ObserveSince(time.Now())
	}
	n := e.nTr + e.nTe
	sb := subsetScratch.Get().(*subsetBufs)
	defer subsetScratch.Put(sb)
	if need := n * k; cap(sb.x) < need {
		sb.x = make([]float64, need)
	}
	x := sb.x[: n*k : n*k]
	for i := 0; i < n; i++ {
		row := e.x[i*e.d : (i+1)*e.d]
		out := x[i*k : (i+1)*k]
		for c, p := range pos {
			out[c] = row[p]
		}
	}
	trainY, testY := e.y[:e.nTr], e.y[e.nTr:]
	train := &ml.Dataset{X: x[:e.nTr*k], N: e.nTr, D: k, Y: trainY, Task: e.task, Classes: e.classes}
	test := &ml.Dataset{X: x[e.nTr*k:], N: e.nTe, D: k, Y: testY, Task: e.task, Classes: e.classes}
	m := e.fit(train)
	pred := ml.PredictAll(m, test)
	return Score(e.task, e.classes, pred, testY)
}

// ScoreForestWave is ScoreAt over every subset at once, specialized to
// random-forest fitters: it presorts the train columns once into a shared
// split cache, hands each non-empty subset a column-subset view of it, and
// fits all nested forests in one flattened cross-forest tree wave
// (ml.FitForests). It returns the per-subset scores plus the number of trees
// scheduled in the wave.
//
// cfg must describe the same forest the evaluator's Fitter would train — the
// caller asserts that equivalence; when it holds, scores are bit-identical
// to calling ScoreAt on each subset, at any worker count. Empty subsets score
// -Inf without fitting.
func (e *SubsetEvaluator) ScoreForestWave(posSets [][]int, cfg ml.ForestConfig, workers int) ([]float64, int) {
	e.cacheOnce.Do(func() {
		e.trainDS = &ml.Dataset{
			X: e.x[:e.nTr*e.d], N: e.nTr, D: e.d,
			Y: e.y[:e.nTr], Task: e.task, Classes: e.classes,
		}
		e.cache = ml.NewSplitCache(e.trainDS)
		all := make([]int, e.d)
		for j := range all {
			all[j] = j
		}
		// Cold build of every base column (values + orders) up front: the
		// wave below then records pure hits, keeping the cache counters
		// independent of fit scheduling.
		e.cache.Columns(all, true)
	})
	scores := make([]float64, len(posSets))
	jobs := make([]ml.ForestJob, 0, len(posSets))
	live := make([]int, 0, len(posSets))
	for i, pos := range posSets {
		if len(pos) == 0 {
			scores[i] = math.Inf(-1)
			continue
		}
		sub := e.trainDS.View(pos)
		sub.AttachSplits(e.cache.View(e.cache.Columns(pos, true), nil))
		jobs = append(jobs, ml.ForestJob{DS: sub, Cfg: cfg})
		live = append(live, i)
	}
	forests := ml.FitForests(workers, jobs)
	trees := 0
	for k, f := range forests {
		trees += len(f.Trees)
		scores[live[k]] = e.scoreModel(f, posSets[live[k]])
	}
	return scores, trees
}

// scoreModel evaluates a fitted model on the holdout rows restricted to the
// base-column positions pos, gathering through the same pooled scratch and
// row-major layout as ScoreAt's test half.
func (e *SubsetEvaluator) scoreModel(m ml.Model, pos []int) float64 {
	if e.scoreDur != nil {
		defer e.scoreDur.ObserveSince(time.Now())
	}
	k := len(pos)
	sb := subsetScratch.Get().(*subsetBufs)
	defer subsetScratch.Put(sb)
	if need := e.nTe * k; cap(sb.x) < need {
		sb.x = make([]float64, need)
	}
	x := sb.x[: e.nTe*k : e.nTe*k]
	for i := 0; i < e.nTe; i++ {
		row := e.x[(e.nTr+i)*e.d : (e.nTr+i+1)*e.d]
		out := x[i*k : (i+1)*k]
		for c, p := range pos {
			out[c] = row[p]
		}
	}
	testY := e.y[e.nTr:]
	test := &ml.Dataset{X: x, N: e.nTe, D: k, Y: testY, Task: e.task, Classes: e.classes}
	pred := ml.PredictAll(m, test)
	return Score(e.task, e.classes, pred, testY)
}

// SplitCacheStats reports the run-level split-cache counters accumulated by
// ScoreForestWave (zero value before the first wave). Call it only after the
// waves of interest have completed.
func (e *SubsetEvaluator) SplitCacheStats() ml.SplitCacheStats {
	if e.cache == nil {
		return ml.SplitCacheStats{}
	}
	return e.cache.Stats()
}

// HoldoutError trains on sp.Train and returns the MAE on sp.Test (regression
// reporting metric in the paper's Table 1).
func HoldoutError(ds *ml.Dataset, sp Split, fit Fitter) float64 {
	train := ds.Subset(sp.Train)
	test := ds.Subset(sp.Test)
	m := fit(train)
	pred := ml.PredictAll(m, test)
	return MAE(pred, test.Y)
}

// CrossValScore returns the mean task score across k folds.
func CrossValScore(ds *ml.Dataset, k int, seed int64, fit Fitter) float64 {
	splits := KFold(ds, k, seed)
	s := 0.0
	for _, sp := range splits {
		s += HoldoutScore(ds, sp, fit)
	}
	return s / float64(len(splits))
}
