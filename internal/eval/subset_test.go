package eval

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/testenv"
)

// subsetFixture builds a regression dataset where only some columns carry
// signal.
func subsetFixture(n, d int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x[i*d+j] = rng.NormFloat64()
		}
		y[i] = 3*x[i*d] - 2*x[i*d+1] + 0.1*rng.NormFloat64()
	}
	ds, err := ml.NewDataset(x, n, d, y, ml.Regression, 0)
	if err != nil {
		panic(err)
	}
	return ds
}

// TestHoldoutSubsetScoreEquivalence proves the pooled-scratch subset scorer
// returns exactly what materializing the column subset would.
func TestHoldoutSubsetScoreEquivalence(t *testing.T) {
	ds := subsetFixture(120, 6, 5)
	sp := TrainTestSplit(ds, 0.25, 9)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 8, MaxDepth: 4, Seed: 3})
	}
	for _, cols := range [][]int{{0}, {0, 1}, {5, 2, 0}, {0, 1, 2, 3, 4, 5}} {
		want := HoldoutScore(ds.SelectFeatures(cols), sp, fit)
		got := HoldoutSubsetScore(ds, sp, fit, cols)
		if got != want {
			t.Fatalf("cols %v: pooled score %v != materialized score %v", cols, got, want)
		}
		// Repeat to prove pool reuse does not leak state between calls.
		if again := HoldoutSubsetScore(ds, sp, fit, cols); again != want {
			t.Fatalf("cols %v: pooled score drifted on reuse: %v != %v", cols, again, want)
		}
	}
}

// TestHoldoutSubsetScoreOnView checks scoring through a dataset view gathers
// the mapped backing columns.
func TestHoldoutSubsetScoreOnView(t *testing.T) {
	ds := subsetFixture(100, 5, 11)
	v := ds.View([]int{4, 0, 1})
	sp := TrainTestSplit(ds, 0.25, 9)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 8, MaxDepth: 4, Seed: 3})
	}
	want := HoldoutScore(ds.SelectFeatures([]int{0, 1}), sp, fit)
	got := HoldoutSubsetScore(v, sp, fit, []int{1, 2})
	if got != want {
		t.Fatalf("view subset score %v != backing subset score %v", got, want)
	}
}

// TestHoldoutSubsetScoreAllocs is the allocation-regression gate for the
// subset-scoring hot loop: warm pooled scoring must allocate far less than
// materializing a fresh matrix per subset.
func TestHoldoutSubsetScoreAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	ds := subsetFixture(400, 8, 5)
	sp := TrainTestSplit(ds, 0.25, 9)
	cols := []int{0, 1, 2, 3}
	// A trivial fitter isolates the scorer's own allocations from model
	// training (which allocates the same on both paths).
	fit := func(d *ml.Dataset) ml.Model { return constModel(0) }
	HoldoutSubsetScore(ds, sp, fit, cols) // warm the pool
	pooled := testing.AllocsPerRun(20, func() {
		HoldoutSubsetScore(ds, sp, fit, cols)
	})
	materialized := testing.AllocsPerRun(20, func() {
		HoldoutScore(ds.SelectFeatures(cols), sp, fit)
	})
	if pooled*2 > materialized {
		t.Fatalf("pooled scorer allocates too much: %.0f vs %.0f materialized", pooled, materialized)
	}
}

// constModel predicts a constant; it exists to isolate scorer allocations.
type constModel float64

func (m constModel) Predict([]float64) float64 { return float64(m) }
