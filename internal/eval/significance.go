package eval

import (
	"math"
	"math/rand"
	"sort"

	"github.com/arda-ml/arda/internal/ml"
)

// SignificanceResult reports a paired bootstrap comparison of two models'
// holdout predictions — the statistical test the paper's §9 suggests for
// validating augmented features.
type SignificanceResult struct {
	// BaseScore and AugScore are the point estimates on the holdout.
	BaseScore, AugScore float64
	// MeanDelta is the mean bootstrap difference (aug − base).
	MeanDelta float64
	// PValue estimates P(aug <= base) under bootstrap resampling of the
	// holdout rows; small values mean the improvement is unlikely to be a
	// holdout artifact.
	PValue float64
	// CI95 is the [2.5%, 97.5%] bootstrap interval of the difference.
	CI95 [2]float64
	// Resamples is the number of bootstrap rounds performed.
	Resamples int
}

// Significant reports whether the augmentation improvement clears the given
// significance level (e.g. 0.05).
func (r *SignificanceResult) Significant(alpha float64) bool {
	return r.PValue < alpha && r.MeanDelta > 0
}

// CompareAugmentation runs a paired bootstrap test on two prediction vectors
// over the same holdout rows. task/classes select the score (accuracy or
// clipped R²).
func CompareAugmentation(task ml.Task, classes int, basePred, augPred, truth []float64, resamples int, seed int64) *SignificanceResult {
	if resamples <= 0 {
		resamples = 1000
	}
	n := len(truth)
	rng := rand.New(rand.NewSource(seed))
	res := &SignificanceResult{
		BaseScore: Score(task, classes, basePred, truth),
		AugScore:  Score(task, classes, augPred, truth),
		Resamples: resamples,
	}
	if n == 0 {
		res.PValue = 1
		return res
	}
	deltas := make([]float64, resamples)
	idx := make([]int, n)
	rb := make([]float64, n)
	ra := make([]float64, n)
	rt := make([]float64, n)
	worse := 0
	for r := 0; r < resamples; r++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		for i, j := range idx {
			rb[i] = basePred[j]
			ra[i] = augPred[j]
			rt[i] = truth[j]
		}
		d := Score(task, classes, ra, rt) - Score(task, classes, rb, rt)
		deltas[r] = d
		res.MeanDelta += d
		if d <= 0 {
			worse++
		}
	}
	res.MeanDelta /= float64(resamples)
	res.PValue = float64(worse) / float64(resamples)
	sort.Float64s(deltas)
	lo := int(math.Floor(0.025 * float64(resamples)))
	hi := int(math.Ceil(0.975*float64(resamples))) - 1
	if hi >= resamples {
		hi = resamples - 1
	}
	res.CI95 = [2]float64{deltas[lo], deltas[hi]}
	return res
}

// TestAugmentation is the convenience form: it fits the estimator on the
// training side of both datasets (which must share rows and row order) and
// bootstraps the holdout difference.
func TestAugmentation(baseDS, augDS *ml.Dataset, fit Fitter, resamples int, seed int64) *SignificanceResult {
	split := TrainTestSplit(augDS, 0.25, seed)
	baseModel := fit(baseDS.Subset(split.Train))
	augModel := fit(augDS.Subset(split.Train))
	baseTest := baseDS.Subset(split.Test)
	augTest := augDS.Subset(split.Test)
	basePred := ml.PredictAll(baseModel, baseTest)
	augPred := ml.PredictAll(augModel, augTest)
	return CompareAugmentation(augDS.Task, augDS.Classes, basePred, augPred, augTest.Y, resamples, seed)
}
