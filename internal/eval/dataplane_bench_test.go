package eval

import (
	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

// BenchmarkDataplaneSubsetScore compares pooled copy-free subset scoring
// against materializing a fresh column-subset matrix per evaluation — the
// inner loop of every wrapper feature-selection search. The trivial fitter
// isolates scorer allocations from model training, which is identical on
// both paths. Collected into BENCH_dataplane.json by `make bench-dataplane`.
func BenchmarkDataplaneSubsetScore(b *testing.B) {
	ds := subsetFixture(2000, 16, 5)
	sp := TrainTestSplit(ds, 0.25, 9)
	cols := []int{0, 1, 2, 3, 5, 8, 13}
	fit := func(d *ml.Dataset) ml.Model { return constModel(0) }
	b.Run("pooled", func(b *testing.B) {
		HoldoutSubsetScore(ds, sp, fit, cols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			HoldoutSubsetScore(ds, sp, fit, cols)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HoldoutScore(ds.SelectFeatures(cols), sp, fit)
		}
	})
}
