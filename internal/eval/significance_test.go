package eval

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

func TestCompareAugmentationClearImprovement(t *testing.T) {
	// Base predicts poorly, augmented predicts nearly perfectly.
	n := 200
	truth := make([]float64, n)
	basePred := make([]float64, n)
	augPred := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		truth[i] = float64(i % 2)
		basePred[i] = float64(rng.Intn(2)) // coin flip
		augPred[i] = truth[i]
		if i%20 == 0 {
			augPred[i] = 1 - truth[i] // 95% accuracy
		}
	}
	res := CompareAugmentation(ml.Classification, 2, basePred, augPred, truth, 500, 2)
	if !res.Significant(0.05) {
		t.Fatalf("clear improvement not significant: %+v", res)
	}
	if res.CI95[0] <= 0 {
		t.Fatalf("CI lower bound %v should be positive", res.CI95[0])
	}
	if res.AugScore <= res.BaseScore {
		t.Fatal("point estimates inverted")
	}
}

func TestCompareAugmentationNoImprovement(t *testing.T) {
	// Identical predictions: delta is identically zero, p-value 1.
	n := 100
	truth := make([]float64, n)
	pred := make([]float64, n)
	for i := 0; i < n; i++ {
		truth[i] = float64(i % 2)
		pred[i] = truth[i]
	}
	res := CompareAugmentation(ml.Classification, 2, pred, pred, truth, 300, 3)
	if res.Significant(0.05) {
		t.Fatalf("identical models reported significant: %+v", res)
	}
	if res.PValue != 1 {
		t.Fatalf("p-value = %v, want 1", res.PValue)
	}
}

func TestCompareAugmentationNoisyTie(t *testing.T) {
	// Both models are coin flips; significance should (almost always) fail.
	n := 150
	rng := rand.New(rand.NewSource(4))
	truth := make([]float64, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		truth[i] = float64(i % 2)
		a[i] = float64(rng.Intn(2))
		b[i] = float64(rng.Intn(2))
	}
	res := CompareAugmentation(ml.Classification, 2, a, b, truth, 500, 5)
	if res.PValue < 0.01 {
		t.Fatalf("noise vs noise p-value = %v", res.PValue)
	}
}

func TestTestAugmentationEndToEnd(t *testing.T) {
	// Base dataset: pure noise feature. Augmented: same rows plus a
	// perfectly informative feature.
	n := 240
	rng := rand.New(rand.NewSource(6))
	y := make([]float64, n)
	noise := make([]float64, n)
	both := make([]float64, n*2)
	for i := 0; i < n; i++ {
		y[i] = float64(i % 2)
		noise[i] = rng.NormFloat64()
		both[i*2] = noise[i]
		both[i*2+1] = y[i]*3 + 0.1*rng.NormFloat64()
	}
	baseDS, _ := ml.NewDataset(noise, n, 1, y, ml.Classification, 2)
	augDS, _ := ml.NewDataset(both, n, 2, y, ml.Classification, 2)
	fit := func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 15, MaxDepth: 5, Seed: 1})
	}
	res := TestAugmentation(baseDS, augDS, fit, 400, 7)
	if !res.Significant(0.05) {
		t.Fatalf("informative augmentation not significant: %+v", res)
	}
}

func TestCompareAugmentationEmpty(t *testing.T) {
	res := CompareAugmentation(ml.Classification, 2, nil, nil, nil, 100, 8)
	if res.PValue != 1 {
		t.Fatalf("empty holdout p-value = %v", res.PValue)
	}
}
