// Package cli centralizes diagnostics for the repo's commands (cmd/arda,
// cmd/ardabench, cmd/datagen, cmd/benchjson, cmd/tracecheck): one
// mutex-guarded stderr writer and one -v contract. Reports and data belong
// on stdout; every progress line, warning, and error flows through here, so
// verbose pipeline progress and failure output never interleave mid-line on
// stderr and quiet runs stay quiet.
package cli

import (
	"fmt"
	"io"
	"os"
	"sync"
)

var (
	mu      sync.Mutex
	name    = "arda"
	verbose bool
	stderr  io.Writer = os.Stderr
	exit              = os.Exit
)

// Setup names the tool (the prefix of every diagnostic line) and sets the
// verbosity. Call once from main after flag parsing.
func Setup(tool string, v bool) {
	mu.Lock()
	defer mu.Unlock()
	name, verbose = tool, v
}

// Verbose reports whether -v diagnostics are enabled.
func Verbose() bool {
	mu.Lock()
	defer mu.Unlock()
	return verbose
}

// Progressf writes one progress line to stderr, only when verbose. Its
// signature matches core.Options.Logf, so commands pass it straight through.
func Progressf(format string, args ...any) {
	mu.Lock()
	defer mu.Unlock()
	if !verbose {
		return
	}
	fmt.Fprintf(stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
}

// Noticef writes one line to stderr regardless of verbosity — for
// operational facts the user asked for (listen addresses, output paths).
func Noticef(format string, args ...any) {
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
}

// Errorf writes one error line to stderr regardless of verbosity.
func Errorf(format string, args ...any) {
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(stderr, "%s: error: %s\n", name, fmt.Sprintf(format, args...))
}

// Fatalf is Errorf followed by exit status 1.
func Fatalf(format string, args ...any) {
	Errorf(format, args...)
	exit(1)
}

// Dump writes a preformatted block (e.g. a rendered stage tree) to stderr
// under the shared lock, only when verbose.
func Dump(block string) {
	mu.Lock()
	defer mu.Unlock()
	if !verbose {
		return
	}
	io.WriteString(stderr, block)
}
