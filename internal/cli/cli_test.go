package cli

import (
	"bytes"
	"strings"
	"testing"
)

// swap redirects the package's stderr and exit for one test.
func swap(t *testing.T) (*bytes.Buffer, *int) {
	t.Helper()
	var buf bytes.Buffer
	code := -1
	mu.Lock()
	prevW, prevExit, prevName, prevV := stderr, exit, name, verbose
	stderr = &buf
	exit = func(c int) { code = c }
	mu.Unlock()
	t.Cleanup(func() {
		mu.Lock()
		stderr, exit, name, verbose = prevW, prevExit, prevName, prevV
		mu.Unlock()
	})
	return &buf, &code
}

func TestProgressfHonorsVerbose(t *testing.T) {
	buf, _ := swap(t)
	Setup("tool", false)
	Progressf("hidden %d", 1)
	Dump("hidden block\n")
	if buf.Len() != 0 {
		t.Fatalf("quiet mode wrote: %q", buf.String())
	}
	Setup("tool", true)
	Progressf("shown %d", 2)
	Dump("block\n")
	out := buf.String()
	if !strings.Contains(out, "tool: shown 2\n") || !strings.Contains(out, "block\n") {
		t.Fatalf("verbose output wrong: %q", out)
	}
}

func TestErrorfAndFatalf(t *testing.T) {
	buf, code := swap(t)
	Setup("tool", false)
	Errorf("bad %s", "thing")
	if got := buf.String(); !strings.Contains(got, "tool: error: bad thing\n") {
		t.Fatalf("error output wrong: %q", got)
	}
	Fatalf("fatal")
	if *code != 1 {
		t.Fatalf("Fatalf exit code = %d, want 1", *code)
	}
	Noticef("note")
	if !strings.Contains(buf.String(), "tool: note\n") {
		t.Fatalf("notice missing: %q", buf.String())
	}
}
