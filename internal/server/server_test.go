package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/runqueue"
	"github.com/arda-ml/arda/internal/synth"
	"github.com/arda-ml/arda/internal/testenv"
)

// startService boots a manager + server over fresh state and a synthetic
// corpus, returning the base URL and the pieces for direct inspection.
func startService(t *testing.T, cfg runqueue.Config) (string, *runqueue.Manager, *Server, string, string) {
	t.Helper()
	dataDir := t.TempDir()
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.15})
	write := func(tb *dataframe.Table) {
		t.Helper()
		if err := tb.WriteCSVFile(filepath.Join(dataDir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	write(corpus.Base)
	for _, tb := range corpus.Repo {
		write(tb)
	}
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	cfg.DataDir = dataDir
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 1
	}
	cfg.Logf = t.Logf
	tr := obs.New("ardad-test")
	cfg.Trace = tr
	mgr, err := runqueue.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("localhost:0", mgr, tr)
	if err != nil {
		t.Fatal(err)
	}
	return "http://" + srv.Addr(), mgr, srv, corpus.Base.Name(), corpus.Target
}

// postJSON submits a body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// waitHTTPTerminal polls GET /runs/{id} until the run reaches a terminal
// state.
func waitHTTPTerminal(t *testing.T, base, id string, timeout time.Duration) runqueue.Record {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var rec runqueue.Record
		if resp := getJSON(t, base+"/runs/"+id, &rec); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /runs/%s = %d", id, resp.StatusCode)
		}
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s", id, rec.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServiceEndToEnd(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	base, mgr, srv, baseTable, target := startService(t, runqueue.Config{})

	// Health before any run.
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Submit a run over HTTP.
	var rec runqueue.Record
	resp := postJSON(t, base+"/runs", runqueue.Spec{Base: baseTable, Target: target, Size: 128, KeepTable: true}, &rec)
	if resp.StatusCode != http.StatusAccepted || rec.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, rec)
	}
	if loc := resp.Header.Get("Location"); loc != "/runs/"+rec.ID {
		t.Fatalf("Location = %q", loc)
	}

	// A malformed spec is a 400 with an error body.
	var apiErr map[string]string
	if resp := postJSON(t, base+"/runs", map[string]any{"target": target}, &apiErr); resp.StatusCode != http.StatusBadRequest || apiErr["error"] == "" {
		t.Fatalf("bad submit = %d %v", resp.StatusCode, apiErr)
	}
	// Unknown fields are rejected, catching client typos.
	if resp := postJSON(t, base+"/runs", map[string]any{"base": baseTable, "target": target, "siize": 9}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo submit = %d, want 400", resp.StatusCode)
	}

	final := waitHTTPTerminal(t, base, rec.ID, 2*time.Minute)
	if final.State != runqueue.StateCompleted {
		t.Fatalf("run finished %s (%s)", final.State, final.Error)
	}

	// Result endpoint serves the deterministic summary.
	var res runqueue.RunResult
	if resp := getJSON(t, base+"/runs/"+rec.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d", resp.StatusCode)
	}
	if res.TableDigest == "" || res.FinalScore == 0 {
		t.Fatalf("result carries no scores: %+v", res)
	}

	// The kept table is downloadable CSV.
	tresp, err := http.Get(base + "/runs/" + rec.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	tableCSV, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK || !bytes.Contains(tableCSV, []byte(",")) {
		t.Fatalf("table = %d (%d bytes)", tresp.StatusCode, len(tableCSV))
	}

	// The event stream replays the finished run as NDJSON.
	eresp, err := http.Get(base + "/runs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event stream line %d is not JSON: %v", events+1, err)
		}
		events++
	}
	eresp.Body.Close()
	if events == 0 {
		t.Fatal("event stream empty for a completed run")
	}

	// /runs lists the run; /statusz and /metrics render.
	var list []runqueue.Record
	getJSON(t, base+"/runs", &list)
	if len(list) != 1 || list[0].ID != rec.ID {
		t.Fatalf("list = %+v", list)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"arda_queue_admitted", "arda_queue_completed", "arda_queue_wait"} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, mbody)
		}
	}
	sresp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(sbody), rec.ID) {
		t.Fatalf("/statusz missing run:\n%s", sbody)
	}

	// Unknown runs 404 everywhere.
	if resp := getJSON(t, base+"/runs/r424242", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run = %d", resp.StatusCode)
	}

	if err := mgr.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(0); err != nil {
		t.Fatal(err)
	}
}

func TestServiceQueuePressureAndCancel(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	inj := faults.New(1, faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: 80 * time.Millisecond})
	base, mgr, srv, baseTable, target := startService(t, runqueue.Config{QueueCap: 1, Concurrency: 1, Injector: inj})
	spec := runqueue.Spec{Base: baseTable, Target: target, Size: 128}

	var first, second runqueue.Record
	if resp := postJSON(t, base+"/runs", spec, &first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	// Wait for the first run to occupy the execution slot.
	deadline := time.Now().Add(time.Minute)
	for {
		var rec runqueue.Record
		getJSON(t, base+"/runs/"+first.ID, &rec)
		if rec.State == runqueue.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first run never started (%s)", rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp := postJSON(t, base+"/runs", spec, &second); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	// Queue full → 429 with Retry-After.
	resp := postJSON(t, base+"/runs", spec, nil)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overflow submit = %d (Retry-After %q), want 429", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Cancel both over HTTP.
	for _, id := range []string{second.ID, first.ID} {
		req, err := http.NewRequest(http.MethodDelete, base+"/runs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s = %d", id, dresp.StatusCode)
		}
	}
	if rec := waitHTTPTerminal(t, base, first.ID, time.Minute); rec.State != runqueue.StateCanceled {
		t.Fatalf("first run finished %s, want canceled", rec.State)
	}
	if rec := waitHTTPTerminal(t, base, second.ID, time.Minute); rec.State != runqueue.StateCanceled {
		t.Fatalf("second run finished %s, want canceled", rec.State)
	}

	if err := mgr.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(0); err != nil {
		t.Fatal(err)
	}
}

// TestServiceDrainGate is the drain acceptance gate at the HTTP layer: under
// sustained submissions, a drain flips new submits to 503 + Retry-After,
// in-flight runs finish or checkpoint within the deadline, and no goroutine
// leaks.
func TestServiceDrainGate(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	inj := faults.New(1, faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: 60 * time.Millisecond})
	base, mgr, srv, baseTable, target := startService(t, runqueue.Config{QueueCap: 8, Concurrency: 2, Injector: inj})
	spec := runqueue.Spec{Base: baseTable, Target: target, Size: 128}

	// Sustained submissions: a background loop keeps submitting until told
	// to stop, counting each response class.
	stop := make(chan struct{})
	done := make(chan map[int]int)
	go func() {
		codes := map[int]int{}
		for {
			select {
			case <-stop:
				done <- codes
				return
			default:
			}
			raw, _ := json.Marshal(spec)
			resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(raw))
			if err != nil {
				codes[-1]++
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codes[resp.StatusCode]++
				if resp.StatusCode == http.StatusServiceUnavailable {
					if resp.Header.Get("Retry-After") == "" {
						codes[-2]++
					}
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Let some runs get in flight, then drain with a short deadline so
	// stragglers are preempted and requeued.
	time.Sleep(300 * time.Millisecond)
	if err := mgr.Drain(100 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Post-drain, submissions must be rejected 503 — sample a few.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, base+"/runs", spec, nil)
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("post-drain submit = %d (Retry-After %q), want 503", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	}
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	close(stop)
	codes := <-done
	if codes[-1] > 0 {
		t.Fatalf("submitter saw %d transport errors", codes[-1])
	}
	if codes[-2] > 0 {
		t.Fatalf("%d draining rejections lacked Retry-After", codes[-2])
	}

	// Nothing is executing after Drain returned; every admitted run is
	// accounted for in exactly one state.
	a := mgr.Accounting()
	if a.Running != 0 {
		t.Fatalf("%d runs still running after drain", a.Running)
	}
	in := a.Admitted + a.Requeued
	out := a.Completed + a.Failed + a.Canceled + a.Queued + a.Running
	if in != out {
		t.Fatalf("accounting violated after drain: %+v", a)
	}
	if int64(codes[http.StatusAccepted]) != a.Admitted {
		t.Fatalf("client saw %d accepts, queue admitted %d", codes[http.StatusAccepted], a.Admitted)
	}

	if err := mgr.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(0); err != nil {
		t.Fatal(err)
	}
}

// TestServiceLiveEventStream subscribes to /runs/{id}/events while the run
// executes and verifies the stream delivers events and terminates when the
// run finishes.
func TestServiceLiveEventStream(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	base, mgr, srv, baseTable, target := startService(t, runqueue.Config{})

	var rec runqueue.Record
	if resp := postJSON(t, base+"/runs", runqueue.Spec{Base: baseTable, Target: target, Size: 128}, &rec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Wait until the run starts so the live stream exists.
	deadline := time.Now().Add(time.Minute)
	for {
		var r runqueue.Record
		getJSON(t, base+"/runs/"+rec.ID, &r)
		if r.State == runqueue.StateRunning || r.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/runs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) > 0 {
				events++
			}
		}
	}()
	select {
	case <-finished:
		// Stream closed when the run's trace finished.
	case <-time.After(2 * time.Minute):
		t.Fatal("live event stream never terminated")
	}
	resp.Body.Close()
	if events == 0 {
		t.Fatal("live stream delivered no events")
	}
	if rec := waitHTTPTerminal(t, base, rec.ID, time.Minute); rec.State != runqueue.StateCompleted {
		t.Fatalf("run finished %s (%s)", rec.State, rec.Error)
	}

	if err := mgr.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(0); err != nil {
		t.Fatal(err)
	}
}
