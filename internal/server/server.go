// Package server is ardad's HTTP face: a thin, stateless layer that maps
// REST-ish endpoints onto a runqueue.Manager. All queueing, durability, and
// execution semantics live in the manager; the server only translates
// transport — JSON in/out, typed admission errors to status codes (429 queue
// full or tenant limit, 503 draining, 409 owned by a peer daemon), and the
// per-run event stream to NDJSON over a flushed connection. Retry-After
// values on 429/503 carry bounded seeded jitter so a fleet of rejected
// clients does not retry in lockstep.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/arda-ml/arda/internal/metrics"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/retry"
	"github.com/arda-ml/arda/internal/runqueue"
)

// samplerInterval matches the single-run telemetry server's cadence.
const samplerInterval = 250 * time.Millisecond

// Server serves the augmentation service API for one manager:
//
//	POST   /runs             submit a run (JSON runqueue.Spec) → 202 + record
//	GET    /runs             list all runs
//	GET    /runs/{id}        one run's record
//	GET    /runs/{id}/result a completed run's result
//	GET    /runs/{id}/events the run's trace event stream (NDJSON, live)
//	GET    /runs/{id}/table  the augmented table (keep_table runs)
//	DELETE /runs/{id}        cancel the run
//	GET    /metrics          Prometheus exposition of the daemon trace
//	GET    /statusz          queue accounting + run table, human-readable
//	GET    /healthz          200 while admitting, 503 while draining
type Server struct {
	mgr     *runqueue.Manager
	tr      *obs.Trace
	h       *metrics.Handle
	sampler *obs.RuntimeSampler
	// jitter decorrelates Retry-After values across rejected clients; seeded
	// deterministically so tests can assert the emitted bounds.
	jitter *retry.Jitter
}

// New binds addr and starts serving the manager's API. tr is the daemon's
// long-lived trace (queue metrics, runtime gauges); the server starts a
// runtime sampler into it so /metrics scrapes see live heap and worker-pool
// numbers. Stop with Close.
func New(addr string, mgr *runqueue.Manager, tr *obs.Trace) (*Server, error) {
	s := &Server{mgr: mgr, tr: tr, jitter: retry.NewJitter(time.Now().UnixNano())}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/table", s.handleTable)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	mux.HandleFunc("POST /runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	h, err := metrics.Listen(addr, mux)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.h = h
	s.sampler = obs.StartRuntimeSampler(tr, samplerInterval, map[string]func() int64{
		"workers.in_flight": func() int64 { return int64(parallel.InFlight()) },
		"workers.max":       func() int64 { return int64(parallel.MaxWorkers()) },
	})
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.h.Addr() }

// Close stops the sampler and shuts the listener down gracefully, waiting up
// to timeout (0 means the shared default) for in-flight requests. Safe on a
// nil server.
func (s *Server) Close(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	s.sampler.Stop()
	return s.h.Shutdown(timeout)
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfter429 / retryAfter503 bound the jittered Retry-After windows:
// rejected submissions retry within [1,4) seconds, draining responses within
// [5,9). The spread keeps a burst of rejected clients from retrying in
// lockstep and re-creating the pressure that rejected them.
func (s *Server) retryAfter429() string { return strconv.Itoa(s.jitter.Seconds(1, 3)) }
func (s *Server) retryAfter503() string { return strconv.Itoa(s.jitter.Seconds(5, 4)) }

// writeError maps manager errors onto transport semantics. Admission
// pressure is explicitly retryable: 429 (queue full or tenant limit) and 503
// (draining) carry a jittered Retry-After so well-behaved clients back off
// instead of hammering; a run owned by a peer daemon over the shared state
// dir is 409 — cancel it through its owner.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var tle *runqueue.TenantLimitError
	var status int
	switch {
	case errors.Is(err, runqueue.ErrQueueFull), errors.As(err, &tle):
		w.Header().Set("Retry-After", s.retryAfter429())
		status = http.StatusTooManyRequests
	case errors.Is(err, runqueue.ErrDraining):
		w.Header().Set("Retry-After", s.retryAfter503())
		status = http.StatusServiceUnavailable
	case errors.Is(err, runqueue.ErrNotOwned):
		status = http.StatusConflict
	case errors.Is(err, runqueue.ErrNotFound):
		status = http.StatusNotFound
	default:
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec runqueue.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, fmt.Errorf("decoding spec: %w", err))
		return
	}
	rec, err := s.mgr.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/runs/"+rec.ID)
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if rec.State != runqueue.StateCompleted || rec.Result == nil {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("run %s is %s, no result", rec.ID, rec.State),
		})
		return
	}
	writeJSON(w, http.StatusOK, rec.Result)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	rec, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	path := s.mgr.TablePath(rec.ID)
	if _, err := os.Stat(path); err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("run %s kept no table (submit with keep_table)", rec.ID),
		})
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	http.ServeFile(w, r, path)
}

// handleEvents streams one run's trace events as NDJSON: replayed history
// first, then live events, terminating when the attempt's trace finishes.
// For a run executed by an earlier daemon process (no live stream) the
// persisted trace file is served instead — the same NDJSON, just not live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	stream, path, err := s.mgr.Stream(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if stream == nil {
		if _, serr := os.Stat(path); serr != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "run has not executed yet"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		http.ServeFile(w, r, path)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	sub := stream.Subscribe(4096)
	defer sub.Close()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, s.tr.Metrics(), s.tr.Histograms())
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	a := s.mgr.Accounting()
	fmt.Fprintf(w, "draining: %v\n", s.mgr.Draining())
	fmt.Fprintf(w, "admitted %d  requeued %d  takeovers %d  completed %d  failed %d  canceled %d  lost %d\n",
		a.Admitted, a.Requeued, a.Takeovers, a.Completed, a.Failed, a.Canceled, a.Lost)
	fmt.Fprintf(w, "rejected: %d full, %d draining, %d tenant\n", a.RejectedFull, a.RejectedDraining, a.RejectedTenant)
	fmt.Fprintf(w, "live: %d queued, %d running\n", a.Queued, a.Running)
	fmt.Fprintf(w, "leases: %d held, %d renewals\n", a.LeasesHeld, a.LeaseRenewals)
	for _, l := range a.Lanes {
		fmt.Fprintf(w, "tenant %-12s queued %d  running %d  admitted %d  rejected %d\n",
			l.Tenant, l.Queued, l.Running, l.Admitted, l.Rejected)
	}
	fmt.Fprintln(w)
	for _, rec := range s.mgr.List() {
		line := fmt.Sprintf("%-8s %-9s %s/%s", rec.ID, rec.State, rec.Spec.Base, rec.Spec.Target)
		if rec.Error != "" {
			line += "  (" + rec.Error + ")"
		}
		fmt.Fprintln(w, line)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.Draining() {
		w.Header().Set("Retry-After", s.retryAfter503())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
