# Development targets. `make check` is the gate every PR must pass: vet,
# build, the full test suite under the race detector (the parallel execution
# layer makes -race mandatory, not optional), and the allocation-regression
# tests without -race (AllocsPerRun is unreliable under the detector, so
# those tests skip themselves in the race run).

GO ?= go

.PHONY: check vet build test race alloc bench bench-parallel bench-dataplane

check: vet build race alloc

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments harness runs full pipelines; under -race (5-20x slowdown)
# it can exceed Go's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Paper-evaluation benchmarks (reduced scale).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Parallel-kernel micro-benchmarks: report speedup_x at 1 worker vs all cores.
bench-parallel:
	$(GO) test -bench='Mul|MulABt|Transpose|RStar|LeverageIndices' -benchtime=1x -run=^$$ \
		./internal/linalg/ ./internal/featsel/ ./internal/coreset/

# Allocation-regression gate: the AllocsPerRun tests that skip under -race.
alloc:
	$(GO) test -run 'Allocs' ./internal/join/ ./internal/dataframe/ ./internal/eval/

# Data-plane benchmarks: hashed vs string join keys, cached vs cold encode,
# pooled vs materialized subset scoring. Writes a benchstat-comparable JSON
# report (raw lines preserved under .raw).
bench-dataplane:
	$(GO) test -bench='Dataplane' -benchmem -benchtime=3x -run=^$$ \
		./internal/join/ ./internal/dataframe/ ./internal/eval/ \
		| $(GO) run ./cmd/benchjson > BENCH_dataplane.json
	@grep -c '"op"' BENCH_dataplane.json >/dev/null && echo "wrote BENCH_dataplane.json"
