# Development targets. `make check` is the gate every PR must pass: vet,
# build, and the full test suite under the race detector (the parallel
# execution layer makes -race mandatory, not optional).

GO ?= go

.PHONY: check vet build test race bench bench-parallel

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments harness runs full pipelines; under -race (5-20x slowdown)
# it can exceed Go's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Paper-evaluation benchmarks (reduced scale).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Parallel-kernel micro-benchmarks: report speedup_x at 1 worker vs all cores.
bench-parallel:
	$(GO) test -bench='Mul|MulABt|Transpose|RStar|LeverageIndices' -benchtime=1x -run=^$$ \
		./internal/linalg/ ./internal/featsel/ ./internal/coreset/
