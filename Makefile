# Development targets. `make check` is the gate every PR must pass: vet,
# build, the full test suite under the race detector (the parallel execution
# layer makes -race mandatory, not optional), and the allocation-regression
# tests without -race (AllocsPerRun is unreliable under the detector, so
# those tests skip themselves in the race run).

GO ?= go

.PHONY: check vet build test race alloc chaos crash lease-chaos bench bench-parallel bench-dataplane trace-smoke metrics-smoke serve-smoke bench-stages bench-checkpoint bench-select bench-obs profile-select

check: vet build race alloc chaos crash lease-chaos trace-smoke metrics-smoke serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments harness runs full pipelines; under -race (5-20x slowdown)
# it can exceed Go's default 10m per-package timeout on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Paper-evaluation benchmarks (reduced scale).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Parallel-kernel micro-benchmarks: report speedup_x at 1 worker vs all cores.
bench-parallel:
	$(GO) test -bench='Mul|MulABt|Transpose|RStar|LeverageIndices' -benchtime=1x -run=^$$ \
		./internal/linalg/ ./internal/featsel/ ./internal/coreset/

# Allocation-regression gate: the AllocsPerRun tests that skip under -race.
alloc:
	$(GO) test -run 'Allocs' ./internal/join/ ./internal/dataframe/ ./internal/eval/ ./internal/obs/ ./internal/faults/ ./internal/checkpoint/ ./internal/ml/

# Chaos suite under the race detector: deterministic fault injection,
# quarantine isolation, cancellation/timeout, pool panic recovery, and the
# daemon's admission/persistence/run fault sites, queue-pressure rejection,
# and drain-under-load behavior (exact accounting, no leaked goroutines).
chaos:
	$(GO) test -race -timeout 20m -run 'TestChaos|TestCancel|TestTimeout|TestCanceled|TestPanic|TestForEachPanic|TestMapPanic|TestInjector|TestRetry|TestDo|TestBackoff' \
		./internal/core/ ./internal/parallel/ ./internal/faults/ ./internal/retry/
	$(GO) test -race -timeout 20m \
		-run 'TestQueueBounds|TestAdmissionAndPersistenceFaults|TestTransientRunFailure|TestRunHardFailure|TestDrain|TestService|TestTenant|TestLease' \
		./internal/runqueue/ ./internal/server/

# Crash/durability suite under the race detector: checkpoint corruption
# rejection, kill-at-every-stage-boundary resume equivalence, budget
# degradation determinism, atomic artifact writes, daemon state recovery,
# and the process-level gates (arda SIGINT partial report, ardad SIGKILL
# with two runs in flight resuming bit-identically at 1 and 8 workers).
crash:
	$(GO) test -race -timeout 30m \
		-run 'TestCheckpoint|TestResume|TestApplyBudgets|TestBudget|TestSave|TestOpen|TestCreate|TestTruncate|TestLoad|TestNilLog|TestNDJSONFileSink|TestWriteCSVFileAtomic|TestWriteFile|TestPrune|TestRecover|TestSubmitRuns' \
		./internal/checkpoint/ ./internal/core/ ./internal/atomicio/ ./internal/obs/ ./internal/dataframe/ ./internal/runqueue/
	$(GO) test -timeout 20m -run 'TestSIGINTPartialReport|TestCrashRecoveryBitIdentical' \
		./cmd/arda/ ./cmd/ardad/

# Multi-process lease suite under the race detector, then the process-level
# chaos gate: three ardad daemons sharing one state directory while a kill
# driver SIGKILLs whichever daemon owns running work; every run must complete
# exactly once, bit-identical to an uninterrupted daemon, at 1 and 8 workers.
lease-chaos:
	$(GO) test -race -timeout 20m ./internal/lease/
	$(GO) test -race -timeout 30m \
		-run 'TestTenantFairDispatch|TestTenantCaps|TestLeaseSkewTakeover|TestDrainAdmissionRace' \
		./internal/runqueue/
	$(GO) test -timeout 30m -run 'TestMultiDaemonChaosExactlyOnce' ./cmd/ardad/

# Observability smoke: generate a small corpus, run the full pipeline with
# -v and -trace, then validate the NDJSON event stream covers every stage.
trace-smoke:
	@rm -rf /tmp/arda-trace-smoke && mkdir -p /tmp/arda-trace-smoke
	$(GO) run ./cmd/datagen -corpus poverty -scale 0.2 -out /tmp/arda-trace-smoke/data
	$(GO) run ./cmd/arda -dir /tmp/arda-trace-smoke/data -base poverty -target poverty_rate \
		-size 192 -seed 1 -v -trace /tmp/arda-trace-smoke/trace.ndjson \
		-out /tmp/arda-trace-smoke/augmented.csv
	$(GO) run ./cmd/tracecheck \
		-stages prefilter,coreset,join,impute,select,materialize,evaluate \
		/tmp/arda-trace-smoke/trace.ndjson

# Telemetry smoke: run the pipeline with the live metrics server enabled and
# validate it from outside while the run executes — /metrics must be
# syntactically valid Prometheus text exposition containing the stage
# histograms and worker gauges, and /events must stream a complete,
# schema-valid span stream ending with the terminal run event.
metrics-smoke:
	@rm -rf /tmp/arda-metrics-smoke && mkdir -p /tmp/arda-metrics-smoke
	$(GO) build -o /tmp/arda-metrics-smoke/arda ./cmd/arda
	$(GO) build -o /tmp/arda-metrics-smoke/tracecheck ./cmd/tracecheck
	$(GO) run ./cmd/datagen -corpus school-l -scale 0.1 -out /tmp/arda-metrics-smoke/data
	@/tmp/arda-metrics-smoke/arda -dir /tmp/arda-metrics-smoke/data -base school-l \
		-target performance -size 192 -seed 1 -metrics-addr 127.0.0.1:19753 \
		-out /tmp/arda-metrics-smoke/augmented.csv & \
	pid=$$!; \
	/tmp/arda-metrics-smoke/tracecheck -scrape http://127.0.0.1:19753 \
		-stages prefilter,coreset,join,impute,select,materialize,evaluate \
		-require-metrics arda_join_seconds,arda_select_seconds,arda_workers_in_flight,arda_workers_max,arda_runtime_goroutines,arda_runtime_heap_alloc_bytes \
		|| { kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid

# Service smoke: start the ardad daemon over a generated corpus, submit a
# run through the HTTP API, validate the live per-run event stream and the
# daemon's /metrics exposition with tracecheck while the run executes, poll
# the result to completion, then drain with SIGTERM and require a clean
# exit. Exercises the full submit → queue → execute → stream → drain path
# from outside the process.
serve-smoke:
	@rm -rf /tmp/arda-serve-smoke && mkdir -p /tmp/arda-serve-smoke
	$(GO) build -o /tmp/arda-serve-smoke/ardad ./cmd/ardad
	$(GO) build -o /tmp/arda-serve-smoke/tracecheck ./cmd/tracecheck
	$(GO) run ./cmd/datagen -corpus poverty -scale 0.2 -out /tmp/arda-serve-smoke/data
	@/tmp/arda-serve-smoke/ardad -addr 127.0.0.1:19754 -state /tmp/arda-serve-smoke/state \
		-dir /tmp/arda-serve-smoke/data -v & \
	pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		curl -fs http://127.0.0.1:19754/healthz >/dev/null 2>&1 && { up=1; break; }; sleep 0.1; \
	done; \
	test $$up = 1 || { echo "serve-smoke: daemon never came up"; kill $$pid 2>/dev/null; exit 1; }; \
	id=$$(curl -fs -d '{"base":"poverty","target":"poverty_rate","size":192,"seed":1,"tenant":"acme"}' \
		http://127.0.0.1:19754/runs | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	test -n "$$id" || { echo "serve-smoke: submit failed"; kill $$pid 2>/dev/null; exit 1; }; \
	echo "serve-smoke: submitted run $$id"; \
	/tmp/arda-serve-smoke/tracecheck -scrape http://127.0.0.1:19754 -events-path /runs/$$id/events \
		-stages prefilter,coreset,join,impute,select,materialize,evaluate \
		-require-metrics arda_queue_admitted,arda_queue_depth,arda_queue_wait_seconds,arda_runtime_goroutines,arda_workers_in_flight,arda_lease_,arda_tenant_acme_ \
		|| { kill $$pid 2>/dev/null; exit 1; }; \
	ok=0; for i in $$(seq 1 100); do \
		curl -fs http://127.0.0.1:19754/runs/$$id/result >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	test $$ok = 1 || { echo "serve-smoke: run never completed"; kill $$pid 2>/dev/null; exit 1; }; \
	echo "serve-smoke: run $$id completed"; \
	kill -TERM $$pid; wait $$pid

# Stage-cost breakdown over the five corpora via the tracing layer; writes
# BENCH_stages.json.
bench-stages:
	$(GO) run ./cmd/ardabench -quick -exp stages -stages-out BENCH_stages.json

# Data-plane benchmarks: hashed vs string join keys, cached vs cold encode,
# pooled vs materialized subset scoring. Writes a benchstat-comparable JSON
# report (raw lines preserved under .raw).
bench-dataplane:
	$(GO) test -bench='Dataplane' -benchmem -benchtime=3x -run=^$$ \
		./internal/join/ ./internal/dataframe/ ./internal/eval/ \
		| $(GO) run ./cmd/benchjson > BENCH_dataplane.json
	@grep -c '"op"' BENCH_dataplane.json >/dev/null && echo "wrote BENCH_dataplane.json"

# Split-kernel benchmarks: the live adaptive presorted/flat kernel
# ("presorted") against the preserved sort-per-node kernel ("sorted") over
# the forest shapes ARDA fits; benchjson pairs the variants into headline
# speedup ratios.
bench-select:
	$(GO) test -bench='SelectForest' -benchmem -benchtime=3x -run=^$$ \
		./internal/ml/ \
		| $(GO) run ./cmd/benchjson > BENCH_select.json
	@grep -c '"op"' BENCH_select.json >/dev/null && echo "wrote BENCH_select.json"

# CPU profile of one RIFS selection run (the K injection repetitions with
# their ranking ensembles — the pipeline's dominant cost): inspect with
# `go tool pprof select.pprof`.
profile-select:
	$(GO) test -bench='^BenchmarkRStar$$' -benchtime=3x -run=^$$ \
		-cpuprofile=select.pprof ./internal/featsel/
	@rm -f featsel.test
	@echo "wrote select.pprof (go tool pprof select.pprof)"

# Checkpoint-overhead benchmark: the same pipeline with durability off
# ("plain") and on ("checkpointed"); benchjson pairs the variants into a
# headline overhead ratio.
bench-checkpoint:
	$(GO) test -bench='CheckpointOverhead' -benchmem -benchtime=3x -run=^$$ \
		./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_checkpoint.json
	@grep -c '"op"' BENCH_checkpoint.json >/dev/null && echo "wrote BENCH_checkpoint.json"

# Telemetry-overhead benchmark: the same pipeline with the full plane off
# ("plain") and on ("telemetry": trace + histograms + event stream + runtime
# sampler); benchjson pairs the variants into a headline overhead ratio. The
# contract is ≲3% overhead.
bench-obs:
	$(GO) test -bench='ObsOverhead' -benchmem -benchtime=3x -run=^$$ \
		./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@grep -c '"op"' BENCH_obs.json >/dev/null && echo "wrote BENCH_obs.json"
