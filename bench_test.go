package arda

// Benchmark harness: one target per table and figure in the ARDA paper's
// evaluation (§7), running the corresponding experiment from
// internal/experiments at the Quick scale. `go test -bench=. -benchmem`
// regenerates reduced versions of every result; `cmd/ardabench` runs the
// same harnesses at full scale and writes EXPERIMENTS.md.
//
// Reported custom metrics: score improvements are in percent, so e.g.
// "arda_improvement_pct" on BenchmarkFigure3 is the ARDA row of the figure.

import (
	"testing"

	"github.com/arda-ml/arda/internal/experiments"
)

const benchSeed = 1

// BenchmarkFigure3 regenerates Figure 3: achieved augmentation of ARDA vs.
// all-tables, TR rule, and the AutoML baselines on all five corpora.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "arda_improvement_pct", res.Rows, func(r experiments.Figure3Row) (float64, bool) {
			return r.ImprovementPct, r.System == "ARDA"
		})
		reportMean(b, "alltables_improvement_pct", res.Rows, func(r experiments.Figure3Row) (float64, bool) {
			return r.ImprovementPct, r.System == "all tables"
		})
	}
}

// BenchmarkTable1 regenerates Table 1: every feature selector through the
// pipeline on every corpus (error/accuracy + time).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "rifs_improvement_pct", res.Rows, func(r experiments.Table1Row) (float64, bool) {
			return r.ImprovementPct, r.Method == "RIFS"
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4 (score vs. selection time); it shares
// Table 1's sweep, so this target runs the sweep and reports timing spread.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "rifs_seltime_s", res.Rows, func(r experiments.Table1Row) (float64, bool) {
			return r.Time.Seconds(), r.Method == "RIFS"
		})
		reportMean(b, "forward_seltime_s", res.Rows, func(r experiments.Table1Row) (float64, bool) {
			return r.Time.Seconds(), r.Method == "forward selection"
		})
	}
}

// BenchmarkTable2 regenerates Table 2: coreset strategies (stratified,
// sketch vs uniform) on the classification datasets.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "stratified_delta_pct", res.Rows, func(r experiments.CoresetRow) (float64, bool) {
			return r.StratifiedDeltaPct, true
		})
		reportMean(b, "sketch_delta_pct", res.Rows, func(r experiments.CoresetRow) (float64, bool) {
			return r.SketchDeltaPct, true
		})
	}
}

// BenchmarkTable3 regenerates Table 3: sketching vs uniform sampling on the
// regression corpora.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "sketch_delta_pct", res.Rows, func(r experiments.CoresetRow) (float64, bool) {
			return r.SketchDeltaPct, true
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: the four time-series join
// techniques across selectors on Pickup and Taxi.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "twoway_error", res.Rows, func(r experiments.Figure5Row) (float64, bool) {
			return r.Error, r.Variant == "2-way nearest"
		})
		reportMean(b, "hard_error", res.Rows, func(r experiments.Figure5Row) (float64, bool) {
			return r.Error, r.Variant == "hard"
		})
	}
}

// BenchmarkTable4 regenerates Table 4: the Tuple-Ratio prefilter's
// score/speed trade-off.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "speedup_x", res.Rows, func(r experiments.Table4Row) (float64, bool) {
			return r.Speedup, true
		})
		reportMean(b, "score_change_pct", res.Rows, func(r experiments.Table4Row) (float64, bool) {
			return r.ScoreChange, true
		})
	}
}

// BenchmarkTable5 regenerates Table 5: table-join and full materialization
// vs budget-join.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "tablejoin_delta_pct", res.Rows, func(r experiments.Table5Row) (float64, bool) {
			return r.TableDeltaPct, true
		})
		reportMean(b, "fullmat_delta_pct", res.Rows, func(r experiments.Table5Row) (float64, bool) {
			return r.FullMatDeltaPct, true
		})
	}
}

// BenchmarkTable6 regenerates Table 6 (and the data of Figure 6): selector
// accuracy and noise filtering on the micro benchmarks.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMicros(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "rifs_accuracy", res.Rows, func(r experiments.MicroRow) (float64, bool) {
			return r.Accuracy, r.Method == "RIFS"
		})
	}
}

// BenchmarkFigure6 regenerates Figure 6's noise-filtering counts.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMicros(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "rifs_original_fraction", res.Rows, func(r experiments.MicroRow) (float64, bool) {
			if r.Method != "RIFS" || r.Selected == 0 {
				return 0, false
			}
			return float64(r.OriginalSelected) / float64(r.Selected), true
		})
	}
}

// reportMean records the mean of a metric over matching rows.
func reportMean[T any](b *testing.B, name string, rows []T, f func(T) (float64, bool)) {
	sum, n := 0.0, 0
	for _, r := range rows {
		if v, ok := f(r); ok {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), name)
	}
}

// BenchmarkRIFSAblation sweeps RIFS's design choices (ensemble weight,
// injection strategy, K, η) on the noise-injected Kraken benchmark.
func BenchmarkRIFSAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RIFSAblation(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "ensemble_orig_fraction", res.Rows, func(r experiments.AblationRow) (float64, bool) {
			return r.OriginalFrac, r.Setting == "ensemble (nu=0.5)"
		})
	}
}

// BenchmarkExtensions evaluates the implemented §9 future-work items (kNN
// imputation, leverage coresets, transitive discovery) against the default
// pipeline.
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Extensions(experiments.Quick, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, "transitive_delta_pct", res.Rows, func(r experiments.ExtensionRow) (float64, bool) {
			return r.DeltaPct, r.Extension == "discovery"
		})
	}
}
