// Package arda is an automatic relational data augmentation system, a Go
// implementation of "ARDA: Automatic Relational Data Augmentation for
// Machine Learning" (Chepurko et al., VLDB 2020).
//
// Given a base table with a prediction target and a repository of candidate
// tables, ARDA discovers candidate joins, executes them against a coreset of
// the base table under a feature budget, prunes the resulting features by
// comparing them against injected random noise (RIFS), and returns the base
// table augmented with exactly the features that improve a downstream model.
//
// The minimal flow:
//
//	base, _ := arda.ReadCSVFile("taxi.csv")
//	repo, _ := arda.LoadCSVDir("repository/")
//	cands := arda.Discover(base, repo, "collisions")
//	res, _ := arda.Augment(base, cands, arda.Options{Target: "collisions"})
//	fmt.Println(res.BaseScore, res.FinalScore)
//	res.Table.WriteCSVFile("augmented.csv")
package arda

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/obs"
)

// Table is a named, typed columnar table — the unit of data ARDA operates
// on. Construct one with ReadCSVFile/ReadCSV or dataframe constructors.
type Table = dataframe.Table

// Column is one typed column of a Table.
type Column = dataframe.Column

// Candidate is a proposed join from the base table into a repository table.
type Candidate = discovery.Candidate

// Options configures an augmentation run; only Target is required.
type Options = core.Options

// Result is the outcome of an augmentation run: the augmented table, the
// kept columns and tables, and base-vs-final holdout scores.
type Result = core.Result

// QuarantinedCandidate records one candidate table isolated by the fault
// boundary instead of failing the run (see Result.Quarantined).
type QuarantinedCandidate = core.QuarantinedCandidate

// Degradation records one deterministic step the resource-budget ladder took
// to fit the run under Options.MaxCells / Options.MaxCandidateBytes (see
// Result.Degraded).
type Degradation = core.Degradation

// Typed interrupt errors. An Augment run stopped by cancellation or an
// Options.Timeout deadline returns one of these (test with errors.Is)
// together with a partial Result snapshot of the work completed so far.
var (
	ErrCanceled = core.ErrCanceled
	ErrDeadline = core.ErrDeadline
)

// Typed checkpoint errors. A run with Options.Resume set returns one of
// these (test with errors.Is) when the directory's saved state cannot be
// reused: corrupt bytes, or a checkpoint recorded for different inputs or
// options. The clean fallback is rerunning without Resume, which sweeps the
// stale state and starts fresh.
var (
	ErrCheckpointCorrupt  = core.ErrCheckpointCorrupt
	ErrCheckpointMismatch = core.ErrCheckpointMismatch
)

// FaultInjector fires deterministic, seeded faults at the pipeline's
// per-candidate checkpoints — the chaos-testing hook behind
// Options.FaultInjector. Construct one with NewFaultInjector.
type FaultInjector = faults.Injector

// FaultRule describes one fault to inject: which stage and candidate
// ordinal it targets, what kind of fault fires, and whether it is
// transient (retried) or hard (quarantined).
type FaultRule = faults.Rule

// Fault kinds for FaultRule.Kind.
const (
	FaultError = faults.Error
	FaultPanic = faults.Panic
	FaultDelay = faults.Delay
)

// NewFaultInjector builds a deterministic fault injector: the same seed and
// rules fire the same faults at the same (stage, ordinal) checkpoints on
// every run, independent of worker count.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return faults.New(seed, rules...)
}

// Selector is a pluggable feature-selection method.
type Selector = featsel.Selector

// Method names a built-in feature-selection method.
type Method = featsel.Method

// Re-exported feature-selection methods (the paper's §7 lineup). RIFS is the
// default used by Augment when Options.Selector is nil.
const (
	RIFS              = featsel.MethodRIFS
	RandomForest      = featsel.MethodForest
	SparseRegression  = featsel.MethodSparse
	Lasso             = featsel.MethodLasso
	LogisticReg       = featsel.MethodLogistic
	LinearSVC         = featsel.MethodLinearSVC
	FTest             = featsel.MethodFTest
	MutualInfo        = featsel.MethodMutual
	Relief            = featsel.MethodRelief
	ForwardSelection  = featsel.MethodForward
	BackwardSelection = featsel.MethodBackward
	RFE               = featsel.MethodRFE
	AllFeatures       = featsel.MethodAll
)

// Join-plan strategies (§4 "Table grouping").
const (
	BudgetJoin          = core.BudgetJoin
	TableJoin           = core.TableJoin
	FullMaterialization = core.FullMaterialization
)

// SoftMethod selects how soft (proximity) keys are matched.
type SoftMethod = join.SoftMethod

// PlanKind selects the join-plan table-grouping strategy.
type PlanKind = core.PlanKind

// CoresetStrategy selects the row-reduction method.
type CoresetStrategy = coreset.Strategy

// Soft-join methods (§4).
const (
	TwoWayNearest   = join.TwoWayNearest
	NearestNeighbor = join.NearestNeighbor
	HardExact       = join.HardExact
)

// Coreset strategies (§3.1). CoresetLeverage is a specialized construction
// beyond the paper's three: ridge leverage-score sampling that
// preferentially keeps influential rows.
const (
	CoresetUniform    = coreset.Uniform
	CoresetStratified = coreset.Stratified
	CoresetSketch     = coreset.Sketch
	CoresetLeverage   = coreset.Leverage
)

// ReadCSVFile loads one table from a CSV file with type inference; the table
// is named after the file.
func ReadCSVFile(path string) (*Table, error) { return dataframe.ReadCSVFile(path) }

// LoadCSVDir loads every *.csv file in dir as a table, sorted by name.
func LoadCSVDir(dir string) ([]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	tables := make([]*Table, 0, len(names))
	for _, name := range names {
		t, err := dataframe.ReadCSVFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("arda: loading %s: %w", name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Discover proposes candidate joins from the base table into the repository,
// ranked by estimated relevancy. It plays the role of an external
// join-discovery system (Aurum, NYU Auctus); if you already have candidates
// from such a system, pass them to Augment directly.
func Discover(base *Table, repo []*Table, target string) []Candidate {
	return discovery.Discover(base, repo, target, discovery.Options{})
}

// DiscoverTransitive proposes two-hop candidates (base → A → B) in addition
// to nothing else: signal reachable only through an intermediate table is
// materialized as a widened candidate (B's columns prefixed "via.<B>.") that
// joins on the original base key. Append the result to Discover's output
// before calling Augment (§9 future work: augmentation via transitive
// joins).
func DiscoverTransitive(base *Table, repo []*Table, target string, seed int64) []Candidate {
	rng := rand.New(rand.NewSource(seed))
	return discovery.Transitive(base, repo, target, discovery.TransitiveOptions{}, rng)
}

// Describe renders a per-column profile of the table: kinds, ranges,
// cardinalities, missing counts — a quick schema exploration aid.
func Describe(t *Table) string {
	return dataframe.FormatDescription(t.Name(), t.NumRows(), t.Describe())
}

// NewSelector constructs a built-in feature-selection method by name.
func NewSelector(m Method) (Selector, error) { return featsel.New(m) }

// RIFSConfig tunes random-injection feature selection (see featsel.RIFSConfig
// for field documentation); the zero value uses the paper's defaults
// (η = 0.2, K = 10, ν = 0.5, moment-matched injection).
type RIFSConfig = featsel.RIFSConfig

// NewRIFS constructs a RIFS selector with explicit parameters. Use this to
// trade selection quality against speed (e.g. fewer repetitions K or smaller
// ranking forests on very large repositories).
func NewRIFS(cfg RIFSConfig) Selector { return &featsel.RIFS{Config: cfg} }

// Trace is the observability root of one Augment run: hierarchical stage
// spans plus run counters. Create one with NewTrace, set it on
// Options.Trace, and read the finished snapshot from Result.Trace.
type Trace = obs.Trace

// RunStats is a finished trace's snapshot: the stage-cost span tree and the
// final counter values. Render() draws the tree; StageTotals() aggregates
// durations by stage name.
type RunStats = obs.RunStats

// TraceSink consumes a trace's event stream (spans as they end, counters at
// the end of the run).
type TraceSink = obs.Sink

// TraceEvent is one record of the trace event stream — also the NDJSON line
// schema written by NewTraceWriter.
type TraceEvent = obs.Event

// NewTrace starts an augmentation trace streaming to the given sinks (none
// is fine: the in-memory tree in Result.Trace is always built). Create one
// trace per Augment call.
func NewTrace(sinks ...TraceSink) *Trace { return obs.New("augment", sinks...) }

// NewTraceCollector returns a sink buffering every trace event in memory.
func NewTraceCollector() *obs.Collector { return &obs.Collector{} }

// NewTraceWriter returns a sink streaming trace events to w as NDJSON, one
// event per line, written as spans end.
func NewTraceWriter(w io.Writer) *obs.NDJSONSink { return obs.NewNDJSONSink(w) }

// NewTraceFile returns a sink streaming trace events to path as NDJSON,
// published crash-safely: lines accumulate in path+".tmp" and are renamed
// over path when the trace finishes, so the final name only ever holds a
// complete trace. Check the error of the sink's Flush (called by
// Trace.Finish; Flush is idempotent) to confirm the publish.
func NewTraceFile(path string) (*obs.NDJSONFileSink, error) { return obs.NewNDJSONFileSink(path) }

// PublishTraceExpvar exports the trace's counters as the expvar variable
// "arda.counters", served on /debug/vars by net/http servers using the
// default mux (see cmd/arda's -pprof flag).
func PublishTraceExpvar(t *Trace) { obs.PublishExpvar(t) }

// TraceHistogram is a lock-free power-of-two-bucket latency distribution;
// traces record one per stage and per-item span name automatically (plus
// per-tree fit and subset-score distributions during selection). Read them
// from RunStats.Histograms; Quantile estimates p50/p95/p99.
type TraceHistogram = obs.HistogramStat

// TraceStream is a live fan-out sink: every trace event is offered to all
// subscribers over bounded channels with per-subscriber drop accounting, and
// the first events are replayed to late subscribers — the substrate behind
// cmd/arda's /events endpoint and any streaming-progress consumer.
type TraceStream = obs.StreamSink

// NewTraceStream returns a live event bus whose replay buffer holds
// historyCap events (<= 0 selects a default that comfortably covers a full
// run). Wire it into NewTrace as a sink and read via Subscribe.
func NewTraceStream(historyCap int) *TraceStream { return obs.NewStreamSink(historyCap) }

// Augment runs the ARDA pipeline and returns the augmented table together
// with base-vs-augmented model scores. See Options for tuning knobs; the
// defaults follow the paper (uniform coreset, budget-join plan, RIFS
// selection, two-way nearest-neighbour soft joins with time resampling).
func Augment(base *Table, cands []Candidate, opts Options) (*Result, error) {
	return core.Augment(base, cands, opts)
}

// AugmentContext is Augment under a context: cancellation and deadlines are
// honoured at every stage boundary and between parallel work items. An
// interrupted run returns ErrCanceled or ErrDeadline together with a partial
// Result snapshot. Options.Timeout, when set, additionally bounds the run's
// wall-clock time relative to the call.
func AugmentContext(ctx context.Context, base *Table, cands []Candidate, opts Options) (*Result, error) {
	return core.AugmentContext(ctx, base, cands, opts)
}

// AugmentRepository is the one-call convenience API: discover candidates in
// repo, then augment.
func AugmentRepository(base *Table, repo []*Table, opts Options) (*Result, error) {
	cands := Discover(base, repo, opts.Target)
	return core.Augment(base, cands, opts)
}
