package arda

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/synth"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README does:
// write a corpus to CSV, load it back, discover, augment, write the result.
func TestPublicAPIEndToEnd(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 21, Scale: 0.15})
	dir := t.TempDir()
	if err := corpus.Base.WriteCSVFile(filepath.Join(dir, corpus.Base.Name()+".csv")); err != nil {
		t.Fatal(err)
	}
	for _, tab := range corpus.Repo {
		if err := tab.WriteCSVFile(filepath.Join(dir, tab.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}

	tables, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(corpus.Repo)+1 {
		t.Fatalf("loaded %d tables, want %d", len(tables), len(corpus.Repo)+1)
	}
	var base *Table
	var repo []*Table
	for _, tab := range tables {
		if tab.Name() == corpus.Base.Name() {
			base = tab
		} else {
			repo = append(repo, tab)
		}
	}
	if base == nil {
		t.Fatal("base table lost in CSV round trip")
	}

	cands := Discover(base, repo, corpus.Target)
	if len(cands) == 0 {
		t.Fatal("no candidates discovered")
	}
	res, err := Augment(base, cands, Options{Target: corpus.Target, CoresetSize: 192, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != base.NumRows() {
		t.Fatal("augmented table changed row count")
	}
	if res.FinalScore <= res.BaseScore {
		t.Fatalf("no improvement through the public API: %.3f -> %.3f", res.BaseScore, res.FinalScore)
	}

	out := filepath.Join(dir, "augmented.csv")
	if err := res.Table.WriteCSVFile(out); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCols() != res.Table.NumCols() {
		t.Fatalf("augmented CSV round trip lost columns: %d vs %d", back.NumCols(), res.Table.NumCols())
	}
}

func TestAugmentRepositoryConvenience(t *testing.T) {
	corpus := synth.SchoolS(synth.Config{Seed: 22, Scale: 0.15})
	res, err := AugmentRepository(corpus.Base, corpus.Repo, Options{
		Target:          corpus.Target,
		CoresetStrategy: CoresetStratified,
		CoresetSize:     192,
		Seed:            22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KeptColumns) == 0 {
		t.Fatal("nothing kept on a signal-bearing corpus")
	}
}

func TestNewSelectorNames(t *testing.T) {
	for _, m := range []Method{RIFS, RandomForest, SparseRegression, Lasso, LogisticReg,
		LinearSVC, FTest, MutualInfo, Relief, ForwardSelection, BackwardSelection, RFE, AllFeatures} {
		sel, err := NewSelector(m)
		if err != nil {
			t.Fatalf("NewSelector(%s): %v", m, err)
		}
		if sel.Name() != string(m) {
			t.Fatalf("name mismatch: %q vs %q", sel.Name(), m)
		}
	}
}

func TestDescribeFacade(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 23, Scale: 0.1})
	out := Describe(corpus.Base)
	for _, want := range []string{"poverty:", "county_id", "poverty_rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestNewRIFSFacade(t *testing.T) {
	sel := NewRIFS(RIFSConfig{K: 2})
	if sel.Name() != "RIFS" {
		t.Fatalf("NewRIFS name = %q", sel.Name())
	}
}

func TestDiscoverTransitiveFacade(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 24, Scale: 0.1})
	trans := DiscoverTransitive(corpus.Base, corpus.Repo, corpus.Target, 25)
	// Poverty's signal is all directly reachable, but the call must still
	// produce widened candidates from the strongest first hops.
	if len(trans) == 0 {
		t.Fatal("no transitive candidates")
	}
	for _, c := range trans {
		if !strings.Contains(c.Table.Name(), "+") {
			t.Fatalf("widened table name %q lacks hop marker", c.Table.Name())
		}
	}
}
