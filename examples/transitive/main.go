// Transitive joins (the paper's §9 future work): the signal lives two hops
// away. The base table knows each county; only a mapping table knows which
// region a county belongs to; and only the economy table knows each region's
// indicators. A single join can never reach the economy table — transitive
// discovery widens the mapping table with it and lets RIFS decide whether
// the transitively-reached features earn their keep.
//
//	go run ./examples/transitive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/dataframe"
)

func main() {
	base, repo := buildScenario()
	fmt.Printf("base:  %s\n", base)
	fmt.Println("repo:  mapping (county→region), economy (region→gdp, inflation), + noise")

	// Direct discovery cannot reach the economy table.
	direct := arda.Discover(base, repo, "y")
	fmt.Printf("\ndirect candidates: %d\n", len(direct))
	for _, c := range direct {
		fmt.Printf("  %-14s score=%.2f\n", c.Table.Name(), c.Score)
	}

	// Augmenting with direct candidates only.
	noTrans, err := arda.Augment(base, direct, arda.Options{Target: "y", Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Adding transitive candidates: mapping is widened with the economy
	// columns it can reach.
	trans := arda.DiscoverTransitive(base, repo, "y", 4)
	fmt.Printf("\ntransitive candidates: %d\n", len(trans))
	for _, c := range trans {
		fmt.Printf("  %-14s score=%.2f columns=%v\n", c.Table.Name(), c.Score, c.Table.ColumnNames())
	}
	withTrans, err := arda.Augment(base, append(direct, trans...), arda.Options{Target: "y", Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %8s %9s\n", "configuration", "base", "augmented")
	fmt.Printf("%-28s %8.3f %9.3f\n", "direct joins only", noTrans.BaseScore, noTrans.FinalScore)
	fmt.Printf("%-28s %8.3f %9.3f\n", "with transitive joins", withTrans.BaseScore, withTrans.FinalScore)

	fmt.Println("\nkept transitive features:")
	for _, col := range withTrans.KeptColumns {
		if strings.Contains(col, "via.") {
			fmt.Printf("  + %s\n", col)
		}
	}
}

// buildScenario constructs the two-hop corpus.
func buildScenario() (*arda.Table, []*arda.Table) {
	rng := rand.New(rand.NewSource(1))
	// Many more regions than the one-hot cardinality cap: region *identity*
	// can't be memorized through indicator columns, so the model genuinely
	// needs the region's numeric indicators — which live two hops away.
	const counties = 400
	const regions = 80
	countyIDs := make([]string, counties)
	regionOf := make([]string, counties)
	gdp := make([]float64, regions)
	inflation := make([]float64, regions)
	regionNames := make([]string, regions)
	for r := 0; r < regions; r++ {
		regionNames[r] = fmt.Sprintf("region-%02d", r)
		gdp[r] = 20 + 60*rng.Float64()
		inflation[r] = 1 + 7*rng.Float64()
	}
	target := make([]float64, counties)
	localSpend := make([]float64, counties)
	for i := 0; i < counties; i++ {
		countyIDs[i] = fmt.Sprintf("county-%03d", i)
		r := rng.Intn(regions)
		regionOf[i] = regionNames[r]
		localSpend[i] = rng.Float64() * 10
		target[i] = 3 + 0.8*gdp[r] - 2.5*inflation[r] + 0.4*localSpend[i] + rng.NormFloat64()
	}
	base := dataframe.MustNewTable("counties",
		dataframe.NewCategorical("county", countyIDs),
		dataframe.NewNumeric("local_spend", localSpend),
		dataframe.NewNumeric("y", target),
	)
	mapping := dataframe.MustNewTable("mapping",
		dataframe.NewCategorical("county", append([]string{}, countyIDs...)),
		dataframe.NewCategorical("region", regionOf),
	)
	economy := dataframe.MustNewTable("economy",
		dataframe.NewCategorical("region", regionNames),
		dataframe.NewNumeric("gdp", gdp),
		dataframe.NewNumeric("inflation", inflation),
	)
	// Noise tables keyed by county.
	repo := []*arda.Table{mapping, economy}
	for t := 0; t < 6; t++ {
		vals := make([]float64, counties)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		repo = append(repo, dataframe.MustNewTable(fmt.Sprintf("noise_%d", t),
			dataframe.NewCategorical("county", append([]string{}, countyIDs...)),
			dataframe.NewNumeric(fmt.Sprintf("metric_%d", t), vals),
		))
	}
	return base, repo
}
