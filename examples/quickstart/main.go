// Quickstart: generate a small synthetic corpus, run ARDA end-to-end with
// the defaults (uniform coreset, budget-join, RIFS), and print what it kept.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/synth"
)

func main() {
	// A county-level poverty corpus: a base table plus 39 joinable tables,
	// a handful of which carry real signal (unemployment, education, state
	// economy) among many noise tables — the situation a data repository
	// search actually produces.
	corpus := synth.Poverty(synth.Config{Seed: 7, Scale: 0.3})
	fmt.Printf("base table:  %s\n", corpus.Base)
	fmt.Printf("repository:  %d candidate tables\n\n", len(corpus.Repo))

	// Step 1: discover candidate joins (the Aurum/Auctus role).
	cands := arda.Discover(corpus.Base, corpus.Repo, corpus.Target)
	fmt.Printf("discovered %d candidate joins; top five:\n", len(cands))
	for _, c := range cands[:5] {
		fmt.Printf("  %-16s score=%.2f keys=%v\n", c.Table.Name(), c.Score, c.Keys[0].BaseColumn)
	}

	// Step 2: augment. RIFS compares every candidate feature against
	// injected random noise and keeps only the ones that consistently win.
	res, err := arda.Augment(corpus.Base, cands, arda.Options{
		Target: corpus.Target,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbase score      %.3f\n", res.BaseScore)
	fmt.Printf("augmented score %.3f  (%+.1f%%)\n",
		res.FinalScore, 100*(res.FinalScore-res.BaseScore)/res.BaseScore)
	fmt.Printf("kept %d columns from %d tables:\n", len(res.KeptColumns), len(res.KeptTables))
	for _, col := range res.KeptColumns {
		fmt.Printf("  + %s\n", col)
	}

	// Ground truth check (available only because the corpus is synthetic):
	// which kept tables actually carry planted signal?
	fmt.Println("\nkept tables vs planted signal:")
	for _, name := range res.KeptTables {
		mark := "noise"
		if corpus.RelevantTables[name] {
			mark = "signal"
		}
		fmt.Printf("  %-16s %s\n", name, mark)
	}
}
