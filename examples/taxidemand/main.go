// Taxi demand: the paper's motivating scenario. The base table records
// daily collision counts per borough; useful predictors (weather, events)
// live in foreign tables keyed by *time at a different granularity*, so the
// join layer has to resample and soft-match. This example compares the four
// time-series join techniques of the paper's Figure 5 on the same corpus.
//
//	go run ./examples/taxidemand
package main

import (
	"fmt"
	"log"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/synth"
)

func main() {
	corpus := synth.Taxi(synth.Config{Seed: 11, Scale: 0.25})
	fmt.Printf("base:  %s\n", corpus.Base)
	fmt.Printf("weather table is hourly; the base table is daily — joins must align them\n\n")

	cands := arda.Discover(corpus.Base, corpus.Repo, corpus.Target)

	variants := []struct {
		name       string
		method     arda.SoftMethod
		noResample bool
	}{
		{"hard join (unmodified keys)", arda.HardExact, true},
		{"hard join + time-resampling", arda.HardExact, false},
		{"nearest-neighbour soft join", arda.NearestNeighbor, false},
		{"two-way nearest (interpolating)", arda.TwoWayNearest, false},
	}

	fmt.Printf("%-34s %8s %9s %6s\n", "join technique", "base", "augmented", "kept")
	for _, v := range variants {
		opts := arda.Options{
			Target:              corpus.Target,
			Seed:                11,
			SoftMethod:          v.method,
			DisableTimeResample: v.noResample,
		}
		res, err := arda.Augment(corpus.Base, cands, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8.3f %9.3f %6d\n", v.name, res.BaseScore, res.FinalScore, len(res.KeptColumns))
	}

	fmt.Println("\nThe hard join on unmodified keys cannot match hourly weather rows to")
	fmt.Println("daily base rows, so weather features arrive mostly NULL and get imputed")
	fmt.Println("away; resampling and soft joins recover the signal.")
}
