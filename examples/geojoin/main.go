// Geo join: location-based augmentation (the paper's §9 names location
// joins as unexplored future work). Trips carry pickup coordinates; the
// useful predictors live in a neighbourhood table keyed only by the
// neighbourhood centre's coordinates. Discovery detects the lat/lon pair,
// and the pipeline matches each trip to its nearest neighbourhood with a
// grid-indexed 2-D nearest-neighbour join.
//
//	go run ./examples/geojoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/dataframe"
)

func main() {
	base, repo := buildScenario()
	fmt.Printf("base: %s\n", base)
	fmt.Println("repo: neighborhoods keyed by (lat, lon) + noise tables")

	cands := arda.Discover(base, repo, "fare")
	fmt.Printf("\ndiscovered %d candidates:\n", len(cands))
	for _, c := range cands {
		kind := "hard/soft"
		if c.Geo {
			kind = "geo (2-D nearest)"
		}
		fmt.Printf("  %-16s score=%.2f  %s\n", c.Table.Name(), c.Score, kind)
	}

	res, err := arda.Augment(base, cands, arda.Options{Target: "fare", Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbase score      %.3f\n", res.BaseScore)
	fmt.Printf("augmented score %.3f\n", res.FinalScore)
	fmt.Println("kept columns:")
	for _, col := range res.KeptColumns {
		fmt.Printf("  + %s\n", col)
	}
}

// buildScenario creates trips whose fare depends on the nearest
// neighbourhood's income and congestion levels.
func buildScenario() (*arda.Table, []*arda.Table) {
	rng := rand.New(rand.NewSource(2))
	const hoods = 40
	const trips = 1200

	hoodLat := make([]float64, hoods)
	hoodLon := make([]float64, hoods)
	income := make([]float64, hoods)
	congestion := make([]float64, hoods)
	for h := 0; h < hoods; h++ {
		hoodLat[h] = 40.60 + 0.25*rng.Float64()
		hoodLon[h] = -74.05 + 0.30*rng.Float64()
		income[h] = 30 + 120*rng.Float64()
		congestion[h] = rng.Float64() * 10
	}

	lat := make([]float64, trips)
	lon := make([]float64, trips)
	distance := make([]float64, trips)
	fare := make([]float64, trips)
	for i := 0; i < trips; i++ {
		h := rng.Intn(hoods)
		// Trips cluster tightly around their neighbourhood centre.
		lat[i] = hoodLat[h] + 0.002*rng.NormFloat64()
		lon[i] = hoodLon[h] + 0.002*rng.NormFloat64()
		distance[i] = 1 + 9*rng.Float64()
		fare[i] = 3 + 2.2*distance[i] + 0.05*income[h] + 1.4*congestion[h] + 0.8*rng.NormFloat64()
	}
	base := dataframe.MustNewTable("trips",
		dataframe.NewNumeric("pickup_lat", lat),
		dataframe.NewNumeric("pickup_lon", lon),
		dataframe.NewNumeric("distance", distance),
		dataframe.NewNumeric("fare", fare),
	)
	neighborhoods := dataframe.MustNewTable("neighborhoods",
		dataframe.NewNumeric("lat", hoodLat),
		dataframe.NewNumeric("lon", hoodLon),
		dataframe.NewNumeric("median_income", income),
		dataframe.NewNumeric("congestion", congestion),
	)
	repo := []*arda.Table{neighborhoods}
	// Noise: a geo table with useless features and a non-geo noise table.
	junkLat := make([]float64, 30)
	junkLon := make([]float64, 30)
	junkVal := make([]float64, 30)
	for i := range junkLat {
		junkLat[i] = 40.60 + 0.25*rng.Float64()
		junkLon[i] = -74.05 + 0.30*rng.Float64()
		junkVal[i] = rng.NormFloat64()
	}
	repo = append(repo, dataframe.MustNewTable("antenna_sites",
		dataframe.NewNumeric("lat", junkLat),
		dataframe.NewNumeric("lon", junkLon),
		dataframe.NewNumeric("signal_strength", junkVal),
	))
	return base, repo
}
