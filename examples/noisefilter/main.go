// Noise filter: the paper's micro benchmark (§7.2). Ten times the original
// feature count of pure noise is appended to the Kraken sensor dataset, and
// several feature selectors compete on how much of it they filter out while
// preserving accuracy — the experiment behind Figure 6 and Table 6.
//
//	go run ./examples/noisefilter
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/arda-ml/arda/internal/automl"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

func main() {
	base := synth.Kraken(synth.Config{Seed: 5})
	aug, isOriginal := synth.InjectNoise(base, 10, 6)
	fmt.Printf("kraken: %d samples, %d real features + %d injected noise features\n\n",
		aug.N, base.D, aug.D-base.D)

	split := eval.TrainTestSplit(aug, 0.25, 7)
	train := aug.Subset(split.Train)
	test := aug.Subset(split.Test)
	est := automl.DefaultEstimator(7)

	methods := []featsel.Method{
		featsel.MethodRIFS,
		featsel.MethodForest,
		featsel.MethodFTest,
		featsel.MethodMutual,
		featsel.MethodLinearSVC,
		featsel.MethodRelief,
		featsel.MethodAll,
	}

	fmt.Printf("%-16s %9s %9s %9s %9s\n", "method", "accuracy", "selected", "original", "time")
	for _, m := range methods {
		sel, err := featsel.New(m)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		cols, err := sel.Select(train, est, 8)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if len(cols) == 0 {
			cols = []int{0}
		}
		model := est(train.SelectFeatures(cols))
		pred := ml.PredictAll(model, test.SelectFeatures(cols))
		acc := eval.Accuracy(pred, test.Y)
		orig := 0
		for _, j := range cols {
			if isOriginal[j] {
				orig++
			}
		}
		fmt.Printf("%-16s %8.1f%% %9d %9d %9s\n",
			string(m), 100*acc, len(cols), orig, elapsed.Round(10*time.Millisecond))
	}

	fmt.Println("\nA good selector keeps a small set dominated by real features; 'all")
	fmt.Println("features' shows what the model has to cope with when nothing is filtered.")
}
