// Schools: a large, noisy repository (School-L style — hundreds of joinable
// tables, most of them useless). This example shows why the budget-join plan
// and Tuple-Ratio prefiltering matter at repository scale: it runs the same
// classification task with table-join, budget-join, and budget-join + TR
// prefilter, reporting quality and wall time for each.
//
//	go run ./examples/schools
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/synth"
)

func main() {
	// School-L: 350 joinable tables, 5 with planted signal.
	corpus := synth.SchoolL(synth.Config{Seed: 3, Scale: 0.15})
	fmt.Printf("base:       %d schools, target %q (3 classes)\n", corpus.Base.NumRows(), corpus.Target)
	fmt.Printf("repository: %d tables, %d carrying signal\n\n", len(corpus.Repo), len(corpus.RelevantTables))

	cands := arda.Discover(corpus.Base, corpus.Repo, corpus.Target)
	fmt.Printf("discovery proposed %d candidate joins\n\n", len(cands))

	runs := []struct {
		name  string
		opts  arda.Options
		cands []arda.Candidate
	}{
		// Table-join runs one feature-selection pass per table; even capped
		// to the 100 highest-scored candidates it is far slower than
		// budget-join over all 350.
		{"table-join (top 100 candidates)", arda.Options{Plan: arda.TableJoin}, cands[:100]},
		{"budget-join (default)", arda.Options{Plan: arda.BudgetJoin}, cands},
		{"budget-join + TR prefilter", arda.Options{Plan: arda.BudgetJoin, TupleRatioTau: 2.5}, cands},
	}

	// A lighter RIFS (fewer injection repetitions, smaller ranking forest)
	// keeps the 350-batch table-join run tractable for a demo.
	selector := arda.NewRIFS(arda.RIFSConfig{K: 4})

	fmt.Printf("%-36s %9s %9s %6s %9s\n", "configuration", "base", "augmented", "kept", "time")
	for _, r := range runs {
		opts := r.opts
		opts.Target = corpus.Target
		opts.CoresetStrategy = arda.CoresetStratified
		opts.CoresetSize = 256
		opts.Selector = selector
		opts.Seed = 3
		start := time.Now()
		res, err := arda.Augment(corpus.Base, r.cands, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %9.3f %9.3f %6d %9s\n",
			r.name, res.BaseScore, res.FinalScore, len(res.KeptColumns),
			time.Since(start).Round(100*time.Millisecond))
		if res.CandidatesFiltered > 0 {
			fmt.Printf("%-36s (TR rule removed %d tables before joining)\n", "", res.CandidatesFiltered)
		}
	}

	fmt.Println("\nBudget-join groups tables into feature-budget batches, so co-predicting")
	fmt.Println("features split across tables (tutoring hours x district volunteering)")
	fmt.Println("can be discovered together; table-join evaluates them in isolation.")
}
